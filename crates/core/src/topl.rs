//! Online TopL-ICDE processing (Algorithm 3).
//!
//! The processor traverses the tree index with a max-heap keyed by
//! influential-score upper bounds, so nodes that may contain high-influence
//! seed communities are visited first. Index entries are filtered with the
//! index-level pruning rules (Lemmas 5–7); surviving leaf vertices are
//! filtered with the community-level rules (Lemmas 1, 2, 4) and only then
//! refined: the maximal seed community around the centre is extracted
//! (Definition 2) and its exact influential score computed with
//! `calculate_influence(g, θ)`. Once `L` answers exist, the smallest answer
//! score `σ_L` drives score pruning and the early-termination test.
//!
//! Two implementations of that traversal coexist:
//!
//! * [`TopLProcessor::run`] / [`TopLProcessor::run_with_toggles`] — the
//!   default path, backed by the progressive bound-driven kernel in
//!   [`crate::progressive`]: leaf candidates join index nodes in one
//!   best-bound-first heap and exact refinement is deferred until a
//!   candidate's upper bound reaches the top;
//! * [`TopLProcessor::run_eager`] / [`TopLProcessor::run_eager_with_toggles`]
//!   — the direct transcription of Algorithm 3 that refines every surviving
//!   leaf vertex as its leaf pops. It is kept in-tree as the reference
//!   oracle: the progressive path must return bit-identical answers
//!   (`crates/core/tests/progressive_equivalence.rs` enforces this).

use crate::error::{CoreError, CoreResult};
use crate::index::{CommunityIndex, NodeRef};
use crate::progressive::{run_progressive, vertex_set_fingerprint};
use crate::pruning;
use crate::query::TopLQuery;
use crate::seed::{extract_seed_community, extract_seed_community_with, SeedCommunity};
use crate::stats::PruningStats;
use icde_graph::{SocialNetwork, VertexId};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Enables/disables individual pruning rules — the knob behind the ablation
/// study of Figure 4. All rules are enabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningToggles {
    /// Keyword pruning (Lemmas 1 and 5).
    pub keyword: bool,
    /// Support pruning (Lemmas 2 and 6).
    pub support: bool,
    /// Influential-score pruning and early termination (Lemmas 4 and 7).
    pub score: bool,
}

impl Default for PruningToggles {
    fn default() -> Self {
        PruningToggles {
            keyword: true,
            support: true,
            score: true,
        }
    }
}

impl PruningToggles {
    /// Keyword pruning only (first ablation configuration of Fig. 4).
    pub fn keyword_only() -> Self {
        PruningToggles {
            keyword: true,
            support: false,
            score: false,
        }
    }

    /// Keyword + support pruning (second ablation configuration).
    pub fn keyword_support() -> Self {
        PruningToggles {
            keyword: true,
            support: true,
            score: false,
        }
    }

    /// All rules (third ablation configuration; same as `default`).
    pub fn all() -> Self {
        Self::default()
    }

    /// No pruning at all (pure index scan; used as a baseline in tests).
    pub fn none() -> Self {
        PruningToggles {
            keyword: false,
            support: false,
            score: false,
        }
    }
}

/// The result of one TopL-ICDE query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopLAnswer {
    /// Top-`L` seed communities in descending influential-score order. May
    /// contain fewer than `L` entries when the graph does not host `L`
    /// distinct valid communities.
    pub communities: Vec<SeedCommunity>,
    /// Pruning counters accumulated while answering the query.
    pub stats: PruningStats,
    /// Wall-clock time spent inside the processor.
    pub elapsed: Duration,
}

impl TopLAnswer {
    /// The smallest influential score among the returned communities
    /// (`-∞` when empty).
    pub fn sigma_l(&self) -> f64 {
        self.communities
            .last()
            .map_or(f64::NEG_INFINITY, |c| c.influential_score)
    }

    /// The highest influential score among the returned communities.
    pub fn best_score(&self) -> f64 {
        self.communities
            .first()
            .map_or(f64::NEG_INFINITY, |c| c.influential_score)
    }
}

/// Max-heap entry over index nodes keyed by score upper bound.
#[derive(Debug)]
struct HeapEntry {
    key: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Collects the running top-`L` answer set with duplicate elimination.
///
/// Two candidate communities are duplicates when they have the same vertex
/// set (different centres can induce the same maximal community); only the
/// best-scoring copy is kept so the returned `L` communities are distinct.
/// Duplicate detection keys on an FNV fingerprint of the sorted vertex ids
/// (kept in a parallel vector) so the common case is one `u64` compare per
/// held entry; the full vertex-set comparison runs only on a fingerprint
/// match.
#[derive(Debug, Default)]
struct TopLCollector {
    capacity: usize,
    entries: Vec<SeedCommunity>,
    /// `vertex_set_fingerprint` of each entry, index-aligned with `entries`.
    fingerprints: Vec<u64>,
}

impl TopLCollector {
    fn new(capacity: usize) -> Self {
        TopLCollector {
            capacity,
            entries: Vec::with_capacity(capacity + 1),
            fingerprints: Vec::with_capacity(capacity + 1),
        }
    }

    /// `σ_L`: the score of the `L`-th best community so far, or `-∞` while
    /// fewer than `L` communities have been collected.
    fn sigma_l(&self) -> f64 {
        if self.entries.len() < self.capacity {
            f64::NEG_INFINITY
        } else {
            self.entries
                .last()
                .map_or(f64::NEG_INFINITY, |c| c.influential_score)
        }
    }

    /// The insertion slot keeping descending score order: the first index
    /// whose score is strictly smaller than `score` — i.e. *after* any
    /// equal-scoring entries, matching what pushing to the back and stably
    /// re-sorting used to produce, in O(log L) instead of O(L log L).
    fn insertion_point(&self, score: f64) -> usize {
        self.entries
            .partition_point(|c| c.influential_score >= score)
    }

    fn insert(&mut self, candidate: SeedCommunity) {
        let fingerprint = vertex_set_fingerprint(&candidate.vertices);
        if let Some(pos) = self
            .fingerprints
            .iter()
            .zip(&self.entries)
            .position(|(&f, c)| f == fingerprint && c.vertices == candidate.vertices)
        {
            // duplicate vertex set: keep only the better-scoring copy, moving
            // it to its new slot (scores only increase, so it shifts left)
            if candidate.influential_score > self.entries[pos].influential_score {
                self.entries.remove(pos);
                self.fingerprints.remove(pos);
                let at = self.insertion_point(candidate.influential_score);
                self.entries.insert(at, candidate);
                self.fingerprints.insert(at, fingerprint);
            }
            return;
        }
        let at = self.insertion_point(candidate.influential_score);
        if at >= self.capacity {
            return; // would fall off the end anyway
        }
        self.entries.insert(at, candidate);
        self.fingerprints.insert(at, fingerprint);
        if self.entries.len() > self.capacity {
            self.entries.pop();
            self.fingerprints.pop();
        }
    }

    fn into_sorted(self) -> Vec<SeedCommunity> {
        self.entries
    }
}

/// Answers TopL-ICDE queries over one graph + index pair.
#[derive(Debug, Clone, Copy)]
pub struct TopLProcessor<'a> {
    graph: &'a SocialNetwork,
    index: &'a CommunityIndex,
}

impl<'a> TopLProcessor<'a> {
    /// Creates a processor. The index must have been built over `graph`.
    pub fn new(graph: &'a SocialNetwork, index: &'a CommunityIndex) -> Self {
        TopLProcessor { graph, index }
    }

    /// Answers `query` with every pruning rule enabled (progressive kernel).
    pub fn run(&self, query: &TopLQuery) -> CoreResult<TopLAnswer> {
        self.run_with_toggles(query, PruningToggles::default())
    }

    /// Answers `query` with an explicit pruning configuration (ablation),
    /// through the progressive bound-driven kernel.
    pub fn run_with_toggles(
        &self,
        query: &TopLQuery,
        toggles: PruningToggles,
    ) -> CoreResult<TopLAnswer> {
        let query = &self.validate(query)?;
        let start = Instant::now();
        let graph = self.graph;
        let (communities, stats) =
            run_progressive(graph, self.index, query, toggles, |ws, center| {
                extract_seed_community_with(
                    ws,
                    graph,
                    center,
                    query.support,
                    query.radius,
                    &query.keywords,
                )
            });
        Ok(TopLAnswer {
            communities,
            stats,
            elapsed: start.elapsed(),
        })
    }

    /// Rejects queries the index cannot answer before any traversal starts
    /// and returns the canonical form the kernels actually run — so every
    /// spelling of the same query (permuted/duplicated keywords, oversized
    /// `L`) takes the identical execution path.
    fn validate(&self, query: &TopLQuery) -> CoreResult<TopLQuery> {
        let query = query.canonicalize()?;
        if query.radius > self.index.r_max() {
            return Err(CoreError::RadiusExceedsIndex {
                requested: query.radius,
                r_max: self.index.r_max(),
            });
        }
        if self.graph.num_vertices() != self.index.num_graph_vertices() {
            return Err(CoreError::IndexGraphMismatch {
                graph_vertices: self.graph.num_vertices(),
                index_vertices: self.index.num_graph_vertices(),
            });
        }
        Ok(query)
    }

    /// Answers `query` with every pruning rule enabled through the eager
    /// reference path (refine-on-leaf-pop, Algorithm 3 verbatim).
    pub fn run_eager(&self, query: &TopLQuery) -> CoreResult<TopLAnswer> {
        self.run_eager_with_toggles(query, PruningToggles::default())
    }

    /// The eager reference formulation of Algorithm 3: every leaf vertex
    /// that survives the cheap filters is refined the moment its leaf pops.
    ///
    /// Kept as the oracle for the progressive kernel — slower, but a direct
    /// transcription of the paper's pseudocode.
    pub fn run_eager_with_toggles(
        &self,
        query: &TopLQuery,
        toggles: PruningToggles,
    ) -> CoreResult<TopLAnswer> {
        let query = &self.validate(query)?;

        let start = Instant::now();
        let mut stats = PruningStats::new();
        let query_signature = query.keyword_signature(self.index.signature_bits());
        let evaluator = InfluenceEvaluator::new(self.graph, InfluenceConfig { theta: query.theta });
        let mut collector = TopLCollector::new(query.l);

        // Best-first traversal: the root enters with an infinite key so it is
        // always expanded (Algorithm 3 line 3 uses key 0 before any answer
        // exists; +inf is equivalent because sigma_L starts at -inf).
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            key: f64::INFINITY,
            node: self.index.root(),
        });

        while let Some(HeapEntry { key, node }) = heap.pop() {
            stats.heap_pops += 1;
            // Early termination (lines 7-8): every remaining entry has a key
            // not larger than the popped one.
            if toggles.score && key <= collector.sigma_l() {
                stats.early_termination_pops += 1;
                stats.early_terminated_entries += heap.len();
                break;
            }
            match self.index.node(node) {
                NodeRef::Leaf { vertices } => {
                    for &v in vertices {
                        self.process_candidate(
                            v,
                            query,
                            &query_signature,
                            &evaluator,
                            toggles,
                            &mut collector,
                            &mut stats,
                        );
                    }
                }
                NodeRef::Internal { children } => {
                    for &child in children {
                        let child = child as usize;
                        let aggregate = self.index.aggregate(child, query.radius);
                        if toggles.keyword
                            && pruning::can_prune_by_keyword_signature(
                                aggregate.keyword_signature,
                                &query_signature,
                            )
                        {
                            stats.index_keyword_pruned += 1;
                            continue;
                        }
                        if toggles.support
                            && pruning::can_prune_by_support(
                                aggregate.support_upper_bound,
                                query.support,
                            )
                        {
                            stats.index_support_pruned += 1;
                            continue;
                        }
                        let bound = self
                            .index
                            .node_score_bound(child, query.radius, query.theta);
                        if toggles.score && pruning::can_prune_by_score(bound, collector.sigma_l())
                        {
                            stats.index_score_pruned += 1;
                            continue;
                        }
                        heap.push(HeapEntry {
                            key: bound,
                            node: child,
                        });
                    }
                }
            }
        }

        Ok(TopLAnswer {
            communities: collector.into_sorted(),
            stats,
            elapsed: start.elapsed(),
        })
    }

    /// Applies the community-level pruning rules to one candidate centre and
    /// refines it if it survives.
    #[allow(clippy::too_many_arguments)]
    fn process_candidate(
        &self,
        center: VertexId,
        query: &TopLQuery,
        query_signature: &icde_graph::BitVector,
        evaluator: &InfluenceEvaluator<'_>,
        toggles: PruningToggles,
        collector: &mut TopLCollector,
        stats: &mut PruningStats,
    ) {
        let aggregate = self.index.precomputed.aggregate(center, query.radius);
        if toggles.keyword
            && pruning::can_prune_by_keyword_signature(aggregate.keyword_signature, query_signature)
        {
            stats.candidate_keyword_pruned += 1;
            return;
        }
        if toggles.support
            && pruning::can_prune_by_support(aggregate.support_upper_bound, query.support)
        {
            stats.candidate_support_pruned += 1;
            return;
        }
        let bound = self
            .index
            .precomputed
            .score_bound(center, query.radius, query.theta);
        if toggles.score && pruning::can_prune_by_score(bound, collector.sigma_l()) {
            stats.candidate_score_pruned += 1;
            return;
        }

        // Refinement: extract the maximal seed community and compute its
        // exact influential score.
        match extract_seed_community(
            self.graph,
            center,
            query.support,
            query.radius,
            &query.keywords,
        ) {
            None => {
                stats.candidates_without_community += 1;
            }
            Some(vertices) => {
                let influenced = evaluator.influenced_community(&vertices);
                let community = SeedCommunity {
                    center,
                    influential_score: influenced.influential_score(),
                    influenced_size: influenced.len(),
                    vertices,
                };
                stats.candidates_refined += 1;
                stats.exact_verifications += 1; // eager always expands for real
                collector.insert(community);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use crate::seed::is_valid_seed_community;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 250, 5)
            .with_keyword_domain(12)
            .generate()
    }

    fn index(g: &SocialNetwork) -> CommunityIndex {
        IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_fanout(4)
        .with_leaf_capacity(8)
        .build(g)
    }

    fn query() -> TopLQuery {
        TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 3, 2, 0.2, 5)
    }

    #[test]
    fn returns_valid_sorted_communities() {
        let g = graph();
        let idx = index(&g);
        let q = query();
        let answer = TopLProcessor::new(&g, &idx).run(&q).unwrap();
        assert!(!answer.communities.is_empty());
        assert!(answer.communities.len() <= q.l);
        let mut last = f64::INFINITY;
        for c in &answer.communities {
            assert!(c.influential_score <= last + 1e-9);
            last = c.influential_score;
            assert!(is_valid_seed_community(
                &g,
                &c.vertices,
                c.center,
                q.support,
                q.radius,
                &q.keywords
            ));
            assert!(c.influenced_size >= c.len());
        }
        // distinct communities
        for i in 0..answer.communities.len() {
            for j in (i + 1)..answer.communities.len() {
                assert_ne!(
                    answer.communities[i].vertices,
                    answer.communities[j].vertices
                );
            }
        }
    }

    #[test]
    fn pruning_does_not_change_the_answer() {
        let g = graph();
        let idx = index(&g);
        let q = query();
        let processor = TopLProcessor::new(&g, &idx);
        let full = processor
            .run_with_toggles(&q, PruningToggles::all())
            .unwrap();
        let none = processor
            .run_with_toggles(&q, PruningToggles::none())
            .unwrap();
        let kw = processor
            .run_with_toggles(&q, PruningToggles::keyword_only())
            .unwrap();
        let ks = processor
            .run_with_toggles(&q, PruningToggles::keyword_support())
            .unwrap();
        let scores = |a: &TopLAnswer| -> Vec<f64> {
            a.communities
                .iter()
                .map(|c| (c.influential_score * 1e9).round() / 1e9)
                .collect()
        };
        assert_eq!(scores(&full), scores(&none));
        assert_eq!(scores(&full), scores(&kw));
        assert_eq!(scores(&full), scores(&ks));
    }

    #[test]
    fn pruning_reduces_refinement_work() {
        let g = graph();
        let idx = index(&g);
        let q = query();
        let processor = TopLProcessor::new(&g, &idx);
        let full = processor
            .run_with_toggles(&q, PruningToggles::all())
            .unwrap();
        let none = processor
            .run_with_toggles(&q, PruningToggles::none())
            .unwrap();
        assert!(full.stats.candidates_refined <= none.stats.candidates_refined);
        assert!(full.stats.total_pruned_candidates() >= none.stats.total_pruned_candidates());
        // without pruning every vertex is refined or found communityless
        assert_eq!(
            none.stats.candidates_refined + none.stats.candidates_without_community,
            g.num_vertices()
        );
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let g = graph();
        let idx = index(&g);
        let processor = TopLProcessor::new(&g, &idx);
        let mut q = query();
        q.l = 0;
        assert!(matches!(
            processor.run(&q),
            Err(CoreError::InvalidResultSize(0))
        ));
        let mut q = query();
        q.radius = 99;
        assert!(matches!(
            processor.run(&q),
            Err(CoreError::RadiusExceedsIndex { .. })
        ));
    }

    #[test]
    fn mismatched_index_is_rejected() {
        let g = graph();
        let other = DatasetSpec::new(DatasetKind::Uniform, 40, 9).generate();
        let idx = index(&other);
        let processor = TopLProcessor::new(&g, &idx);
        assert!(matches!(
            processor.run(&query()),
            Err(CoreError::IndexGraphMismatch { .. })
        ));
    }

    #[test]
    fn no_matching_keywords_returns_empty() {
        let g = graph();
        let idx = index(&g);
        // keyword domain is 12, so keyword 500 matches nothing
        let q = TopLQuery::new(KeywordSet::from_ids([500]), 3, 2, 0.2, 5);
        let answer = TopLProcessor::new(&g, &idx).run(&q).unwrap();
        assert!(answer.communities.is_empty());
        // keyword pruning should have discarded essentially everything
        assert_eq!(answer.stats.candidates_refined, 0);
    }

    #[test]
    fn answer_helpers() {
        let g = graph();
        let idx = index(&g);
        let answer = TopLProcessor::new(&g, &idx).run(&query()).unwrap();
        if !answer.communities.is_empty() {
            assert!(answer.best_score() >= answer.sigma_l());
        }
        let empty = TopLAnswer {
            communities: vec![],
            stats: PruningStats::new(),
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.sigma_l(), f64::NEG_INFINITY);
        assert_eq!(empty.best_score(), f64::NEG_INFINITY);
    }

    #[test]
    fn larger_l_returns_superset_prefix() {
        let g = graph();
        let idx = index(&g);
        let processor = TopLProcessor::new(&g, &idx);
        let small = processor.run(&query().with_result_size(2)).unwrap();
        let large = processor.run(&query().with_result_size(6)).unwrap();
        assert!(small.communities.len() <= 2);
        assert!(large.communities.len() >= small.communities.len());
        for (s, l) in small.communities.iter().zip(large.communities.iter()) {
            assert!((s.influential_score - l.influential_score).abs() < 1e-9);
        }
    }

    #[test]
    fn collector_dedups_identical_vertex_sets() {
        let mut c = TopLCollector::new(2);
        let community = |score: f64, ids: &[u32]| SeedCommunity {
            center: VertexId(ids[0]),
            vertices: ids.iter().map(|i| VertexId(*i)).collect(),
            influential_score: score,
            influenced_size: ids.len(),
        };
        c.insert(community(1.0, &[1, 2, 3]));
        c.insert(community(2.0, &[1, 2, 3]));
        c.insert(community(1.5, &[4, 5, 6]));
        let out = c.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].influential_score, 2.0);
        assert_eq!(out[1].influential_score, 1.5);
    }

    #[test]
    fn collector_binary_insertion_matches_push_and_sort_reference() {
        // regression for the partition_point insertion: any interleaving of
        // fresh inserts, duplicate upgrades and overflow evictions must
        // produce exactly what the old push-then-stable-sort-then-pop loop
        // produced, including tie order
        let community = |score: f64, ids: &[u32]| SeedCommunity {
            center: VertexId(ids[0]),
            vertices: ids.iter().map(|i| VertexId(*i)).collect(),
            influential_score: score,
            influenced_size: ids.len(),
        };
        let stream = [
            community(1.0, &[1]),
            community(3.0, &[2]),
            community(2.0, &[3]),
            community(2.0, &[4]), // tie with a distinct set
            community(2.0, &[3]), // duplicate, equal score: ignored
            community(4.0, &[3]), // duplicate, better: moves to the front
            community(0.5, &[5]), // below sigma_L once full: dropped
            community(2.5, &[6]),
            community(2.5, &[7]),
            community(0.5, &[5]),
        ];
        for capacity in [1usize, 2, 3, 4, 10] {
            let mut collector = TopLCollector::new(capacity);
            // the pre-optimisation formulation, inlined as the oracle
            let mut reference: Vec<SeedCommunity> = Vec::new();
            for candidate in &stream {
                collector.insert(candidate.clone());
                if let Some(existing) = reference
                    .iter_mut()
                    .find(|c| c.vertices == candidate.vertices)
                {
                    if candidate.influential_score > existing.influential_score {
                        *existing = candidate.clone();
                        reference.sort_by(|a, b| {
                            b.influential_score
                                .partial_cmp(&a.influential_score)
                                .unwrap()
                        });
                    }
                } else {
                    reference.push(candidate.clone());
                    reference.sort_by(|a, b| {
                        b.influential_score
                            .partial_cmp(&a.influential_score)
                            .unwrap()
                    });
                    if reference.len() > capacity {
                        reference.pop();
                    }
                }
                assert_eq!(collector.sigma_l(), {
                    if reference.len() < capacity {
                        f64::NEG_INFINITY
                    } else {
                        reference
                            .last()
                            .map_or(f64::NEG_INFINITY, |c| c.influential_score)
                    }
                });
            }
            let got = collector.into_sorted();
            assert_eq!(got.len(), reference.len(), "capacity {capacity}");
            for (g, r) in got.iter().zip(reference.iter()) {
                assert_eq!(g.vertices, r.vertices, "capacity {capacity}");
                assert_eq!(g.influential_score, r.influential_score);
            }
        }
    }
}
