//! Index persistence: save the offline phase to disk and reload it later.
//!
//! The offline pre-computation (Algorithm 2) is the expensive part of the
//! pipeline — minutes for large graphs — while the online phase is
//! milliseconds to seconds. Production deployments therefore build the index
//! once, persist it next to the graph snapshot, and reload it on start-up.
//! The format is a versioned JSON envelope around the serde representation of
//! [`CommunityIndex`].

use crate::error::{CoreError, CoreResult};
use crate::index::CommunityIndex;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Current on-disk format version. Bump when the index layout changes.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Versioned envelope around a serialised index.
#[derive(Debug, Serialize, Deserialize)]
struct IndexEnvelope {
    format_version: u32,
    index: CommunityIndex,
}

/// Serialises an index (including its pre-computed data) to a JSON string.
pub fn index_to_json(index: &CommunityIndex) -> CoreResult<String> {
    let envelope = IndexEnvelope {
        format_version: INDEX_FORMAT_VERSION,
        index: index.clone(),
    };
    serde_json::to_string(&envelope).map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Reconstructs an index from a JSON string produced by [`index_to_json`].
pub fn index_from_json(json: &str) -> CoreResult<CommunityIndex> {
    let envelope: IndexEnvelope =
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
    if envelope.format_version != INDEX_FORMAT_VERSION {
        return Err(CoreError::Serialization(format!(
            "unsupported index format version {} (expected {})",
            envelope.format_version, INDEX_FORMAT_VERSION
        )));
    }
    Ok(envelope.index)
}

/// Writes an index to a file.
pub fn save_index<P: AsRef<Path>>(index: &CommunityIndex, path: P) -> CoreResult<()> {
    let json = index_to_json(index)?;
    fs::write(path, json).map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Loads an index from a file written by [`save_index`].
pub fn load_index<P: AsRef<Path>>(path: P) -> CoreResult<CommunityIndex> {
    let json = fs::read_to_string(path).map_err(|e| CoreError::Serialization(e.to_string()))?;
    index_from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use crate::query::TopLQuery;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn build() -> (icde_graph::SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, 150, 8)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        (g, index)
    }

    #[test]
    fn json_roundtrip_preserves_query_answers() {
        let (g, index) = build();
        let json = index_to_json(&index).unwrap();
        let reloaded = index_from_json(&json).unwrap();
        assert_eq!(reloaded.num_graph_vertices(), index.num_graph_vertices());
        assert_eq!(reloaded.node_count(), index.node_count());
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
        let a = TopLProcessor::new(&g, &index).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &reloaded).run(&query).unwrap();
        assert_eq!(a.communities.len(), b.communities.len());
        for (x, y) in a.communities.iter().zip(b.communities.iter()) {
            assert_eq!(x.vertices, y.vertices);
            assert!((x.influential_score - y.influential_score).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let (_g, index) = build();
        let path = std::env::temp_dir().join("topl_icde_index_test.json");
        save_index(&index, &path).unwrap();
        let reloaded = load_index(&path).unwrap();
        assert_eq!(reloaded.node_count(), index.node_count());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_g, index) = build();
        let json = index_to_json(&index).unwrap();
        let tampered = json.replacen("\"format_version\":1", "\"format_version\":999", 1);
        assert!(matches!(
            index_from_json(&tampered),
            Err(CoreError::Serialization(_))
        ));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(index_from_json("not json").is_err());
        assert!(load_index("/definitely/not/here.json").is_err());
    }
}
