//! Index persistence: save the offline phase to disk and reload it later.
//!
//! The offline pre-computation (Algorithm 2) is the expensive part of the
//! pipeline — minutes for large graphs — while the online phase is
//! milliseconds to seconds. Production deployments therefore build the index
//! once, persist it next to the graph snapshot, and reload it on start-up.
//!
//! Two formats live behind this module:
//!
//! * the **binary snapshot** ([`save_index_snapshot`] /
//!   [`load_index_snapshot`], implemented in [`crate::snapshot`]) — the
//!   production path: sectioned, checksummed, loaded with one `memcpy` per
//!   flat array (the `bench4` experiment measures the gap vs JSON),
//! * the **JSON envelope** ([`save_index`] / [`load_index`]) — the
//!   compatibility path: human-readable, diff-able, versioned by
//!   [`INDEX_FORMAT_VERSION`].
//!
//! [`load_index_auto`] sniffs the file's magic bytes and dispatches, so
//! callers (the CLI, services) accept either format transparently. All
//! writers are crash-safe (write-to-temp + rename).

use crate::error::{CoreError, CoreResult};
use crate::index::CommunityIndex;
use icde_graph::io::atomic_write;
use icde_graph::snapshot::{path_is_snapshot, LoadMode};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Current JSON format version. Bump when the index layout changes.
/// Version 1 (the pointer-rich pre-PR-4 tree) is no longer readable — the
/// aggregate layout changed shape — and version 2 predates the seed-community
/// score-bound table the progressive online kernel requires; rebuild the
/// index from the graph.
pub const INDEX_FORMAT_VERSION: u32 = 3;

/// Versioned envelope around a serialised index.
#[derive(Debug, Serialize, Deserialize)]
struct IndexEnvelope {
    format_version: u32,
    index: CommunityIndex,
}

/// Serialises an index (including its pre-computed data) to a JSON string.
pub fn index_to_json(index: &CommunityIndex) -> CoreResult<String> {
    let envelope = IndexEnvelope {
        format_version: INDEX_FORMAT_VERSION,
        index: index.clone(),
    };
    serde_json::to_string(&envelope).map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Reconstructs an index from a JSON string produced by [`index_to_json`].
pub fn index_from_json(json: &str) -> CoreResult<CommunityIndex> {
    let envelope: IndexEnvelope =
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
    if envelope.format_version != INDEX_FORMAT_VERSION {
        return Err(CoreError::Serialization(format!(
            "unsupported index format version {} (expected {}; version-1 indexes predate \
             the flattened layout — rebuild the index from the graph)",
            envelope.format_version, INDEX_FORMAT_VERSION
        )));
    }
    // the derive accepts any field combination; run the same structural
    // validation the binary snapshot loader applies so a hand-edited or
    // corrupted JSON file errors here instead of panicking on first access
    envelope
        .index
        .validate()
        .map_err(|e| CoreError::Serialization(format!("invalid index: {e}")))?;
    Ok(envelope.index)
}

/// Writes an index to a JSON file (crash-safe write-then-rename).
pub fn save_index<P: AsRef<Path>>(index: &CommunityIndex, path: P) -> CoreResult<()> {
    let json = index_to_json(index)?;
    atomic_write(path.as_ref(), json.as_bytes())
        .map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Loads an index from a JSON file written by [`save_index`].
pub fn load_index<P: AsRef<Path>>(path: P) -> CoreResult<CommunityIndex> {
    let json = fs::read_to_string(path).map_err(|e| CoreError::Serialization(e.to_string()))?;
    index_from_json(&json)
}

/// Writes an index as a **binary snapshot** (crash-safe; see
/// [`crate::snapshot`] for the format).
pub fn save_index_snapshot<P: AsRef<Path>>(index: &CommunityIndex, path: P) -> CoreResult<()> {
    crate::snapshot::write_index_snapshot(index, path)
        .map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Loads an index from a binary snapshot (mmap where available, buffered
/// fallback elsewhere).
pub fn load_index_snapshot<P: AsRef<Path>>(path: P) -> CoreResult<CommunityIndex> {
    crate::snapshot::read_index_snapshot(path).map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Loads an index from a binary snapshot with an explicit load mode.
pub fn load_index_snapshot_with<P: AsRef<Path>>(
    path: P,
    mode: LoadMode,
) -> CoreResult<CommunityIndex> {
    crate::snapshot::read_index_snapshot_with(path, mode)
        .map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Loads an index from either format: files starting with the snapshot magic
/// bytes take the binary path, everything else is parsed as JSON.
pub fn load_index_auto<P: AsRef<Path>>(path: P) -> CoreResult<CommunityIndex> {
    let path = path.as_ref();
    if path_is_snapshot(path) {
        load_index_snapshot(path)
    } else {
        load_index(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use crate::query::TopLQuery;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn build() -> (icde_graph::SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, 150, 8)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        (g, index)
    }

    #[test]
    fn json_roundtrip_preserves_query_answers() {
        let (g, index) = build();
        let json = index_to_json(&index).unwrap();
        let reloaded = index_from_json(&json).unwrap();
        assert_eq!(reloaded.num_graph_vertices(), index.num_graph_vertices());
        assert_eq!(reloaded.node_count(), index.node_count());
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
        let a = TopLProcessor::new(&g, &index).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &reloaded).run(&query).unwrap();
        assert_eq!(a.communities.len(), b.communities.len());
        for (x, y) in a.communities.iter().zip(b.communities.iter()) {
            assert_eq!(x.vertices, y.vertices);
            assert!((x.influential_score - y.influential_score).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let (_g, index) = build();
        let path = std::env::temp_dir().join("topl_icde_index_test.json");
        save_index(&index, &path).unwrap();
        let reloaded = load_index(&path).unwrap();
        assert_eq!(reloaded.node_count(), index.node_count());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_g, index) = build();
        let json = index_to_json(&index).unwrap();
        let tampered = json.replacen(
            &format!("\"format_version\":{INDEX_FORMAT_VERSION}"),
            "\"format_version\":999",
            1,
        );
        assert_ne!(json, tampered, "envelope carries the current version");
        assert!(matches!(
            index_from_json(&tampered),
            Err(CoreError::Serialization(_))
        ));
    }

    #[test]
    fn auto_loader_dispatches_on_magic_bytes() {
        let (g, index) = build();
        let dir = std::env::temp_dir();
        let json_path = dir.join(format!("icde_persist_auto_{}.json", std::process::id()));
        let snap_path = dir.join(format!("icde_persist_auto_{}.snap", std::process::id()));
        save_index(&index, &json_path).unwrap();
        save_index_snapshot(&index, &snap_path).unwrap();
        let from_json = load_index_auto(&json_path).unwrap();
        let from_snap = load_index_auto(&snap_path).unwrap();
        assert_eq!(from_json.content_fingerprint(), index.content_fingerprint());
        assert_eq!(from_snap.content_fingerprint(), index.content_fingerprint());
        // the reloaded indexes answer queries identically
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
        let a = TopLProcessor::new(&g, &from_json).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &from_snap).run(&query).unwrap();
        assert_eq!(a.communities.len(), b.communities.len());
        let _ = std::fs::remove_file(json_path);
        let _ = std::fs::remove_file(snap_path);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(index_from_json("not json").is_err());
        assert!(load_index("/definitely/not/here.json").is_err());
    }

    #[test]
    fn structurally_inconsistent_json_is_rejected_not_panicking() {
        let (_g, index) = build();
        let json = index_to_json(&index).unwrap();
        // shrink the item pool without touching item_start: the partition
        // invariant breaks, which must surface as an error on load
        let pool_field = "\"item_pool\":[";
        let start = json.find(pool_field).expect("item_pool serialised") + pool_field.len();
        let end = start + json[start..].find(']').expect("pool closes");
        let mut tampered = json.clone();
        tampered.replace_range(start..end, "0");
        assert_ne!(json, tampered);
        assert!(matches!(
            index_from_json(&tampered),
            Err(CoreError::Serialization(_))
        ));
        // a cyclic "tree" (node referencing a non-smaller id) is rejected
        // too: clear the leaf mask so node 0 becomes internal and its pool
        // slice is reinterpreted as child ids ≥ its own id
        let mut cyclic = json.clone();
        let mask_field = "\"leaf_mask\":[";
        let ms = cyclic.find(mask_field).expect("leaf_mask serialised") + mask_field.len();
        let me = ms + cyclic[ms..].find(']').expect("mask closes");
        let zeros = cyclic[ms..me].split(',').count();
        cyclic.replace_range(ms..me, &vec!["0"; zeros].join(","));
        assert!(matches!(
            index_from_json(&cyclic),
            Err(CoreError::Serialization(_))
        ));
    }
}
