//! The progressive bound-driven refinement kernel behind the online phase.
//!
//! The eager formulation of Algorithm 3 ([`TopLProcessor::run_eager_with_toggles`])
//! refines **every** leaf vertex that survives the cheap filters the moment
//! its leaf pops — full `extract_seed_community` plus an exact
//! `influenced_community` expansion each, tens of thousands of times on a
//! large graph. This kernel instead keeps index nodes *and* leaf candidates
//! in one best-bound-first heap and defers all exact work until a
//! candidate's upper bound actually reaches the top: following Bi et al.'s
//! progressive top-k framework, the moment the `L`-th confirmed answer's
//! exact score dominates every open upper bound the traversal stops, having
//! verified only the handful of candidates whose bounds ever mattered.
//!
//! Two ingredients make the bounds tight enough to matter:
//!
//! * the per-candidate key is the **minimum** of the region bound
//!   `σ_z(hop(v, r))` and the offline seed-community bound
//!   `σ_z(X_all(v; 3, r))` ([`PrecomputedData::seed_score_bound`]) — the
//!   latter scores the largest community any qualifying query could realise
//!   at this centre instead of the whole ball, which on the benchmark
//!   workload shrinks the survivor set from tens of thousands to tens;
//! * refined vertex sets are cached by fingerprint, so duplicate maximal
//!   communities (different centres, same set) cost one exact expansion.
//!
//! # Bit-identity with the eager reference
//!
//! The kernel must return *bit-identical* answers to the eager path under
//! every [`PruningToggles`] configuration; the eager path stays in-tree as
//! the oracle (`crates/core/tests/progressive_equivalence.rs`). Identity
//! rests on three observations:
//!
//! 1. **Canonical candidate order is reproducible.** With keys monotone
//!    along tree edges (a node's bound dominates its children's) the popped
//!    keys of a best-first traversal are non-increasing, and because
//!    children always carry smaller ids than their parent, equal-key nodes
//!    pop in descending-id order — the exact order the eager heap produces.
//!    Leaf pops therefore happen in the same relative order no matter how
//!    candidate entries interleave, so numbering candidates consecutively
//!    as their leaf pops (in leaf-slice order) reproduces the eager
//!    processing order as a *rank*.
//! 2. **Ranks stand in for arrival order.** The eager collector resolves
//!    score ties by arrival. [`RankedCollector`] orders by
//!    `(score desc, rank asc)` and dedups equal vertex sets keeping the
//!    smallest rank, so late refinement of an early-rank candidate lands in
//!    exactly the slot eager would have given it.
//! 3. **All bound comparisons are strict.** The eager path may prune on
//!    `bound ≤ σ_L` because its insertion order *is* the canonical order —
//!    a later tie always loses. Here σ_L may have been raised by a
//!    larger-rank candidate first, so pruning a tie could drop a candidate
//!    eager keeps; every skip, node prune and the termination test use
//!    strict `<`, which only abandons candidates provably *below* the final
//!    `σ_L`.
//!
//! [`TopLProcessor::run_eager_with_toggles`]:
//!   crate::topl::TopLProcessor::run_eager_with_toggles
//! [`PruningToggles`]: crate::topl::PruningToggles
//! [`PrecomputedData::seed_score_bound`]:
//!   crate::precompute::PrecomputedData::seed_score_bound

use crate::index::{CommunityIndex, NodeRef};
use crate::precompute::SEED_BOUND_SUPPORT;
use crate::pruning;
use crate::query::TopLQuery;
use crate::seed::SeedCommunity;
use crate::stats::PruningStats;
use crate::topl::PruningToggles;
use icde_graph::snapshot::{fnv1a, fnv1a_extend};
use icde_graph::workspace::{with_thread_workspace, TraversalWorkspace};
use icde_graph::{SocialNetwork, VertexId, VertexSubset};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// FNV-1a over the sorted vertex ids of a subset — the dedup key for "same
/// community, different centre". Equal sets always hash equal (the slice is
/// sorted); collisions are resolved by a full comparison at every use site.
pub(crate) fn vertex_set_fingerprint(vertices: &VertexSubset) -> u64 {
    let mut h = fnv1a(b"icde-vertex-set-v1");
    for v in vertices.as_slice() {
        h = fnv1a_extend(h, &v.0.to_le_bytes());
    }
    h
}

/// One best-first heap entry: an index node awaiting expansion or a leaf
/// candidate awaiting exact refinement.
#[derive(Debug, Clone, Copy)]
enum Entry {
    Node {
        key: f64,
        id: usize,
    },
    Candidate {
        key: f64,
        rank: u32,
        center: VertexId,
    },
}

impl Entry {
    fn key(&self) -> f64 {
        match self {
            Entry::Node { key, .. } | Entry::Candidate { key, .. } => *key,
        }
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // key first; at equal keys nodes expand before candidates refine,
        // node-node ties pop the larger id first (the eager heap's order),
        // and candidate-candidate ties refine the smaller (earlier) rank
        self.key()
            .partial_cmp(&other.key())
            .unwrap_or(Ordering::Equal)
            .then_with(|| match (self, other) {
                (Entry::Node { id: a, .. }, Entry::Node { id: b, .. }) => a.cmp(b),
                (Entry::Node { .. }, Entry::Candidate { .. }) => Ordering::Greater,
                (Entry::Candidate { .. }, Entry::Node { .. }) => Ordering::Less,
                (Entry::Candidate { rank: a, .. }, Entry::Candidate { rank: b, .. }) => b.cmp(a),
            })
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One fully-verified community in the kernel's answer cache.
struct CachedCommunity {
    fingerprint: u64,
    vertices: VertexSubset,
    score: f64,
    influenced_size: usize,
}

/// A collected answer plus the canonical rank of the candidate that produced
/// it (see the module docs on why ranks reproduce eager tie order).
struct Ranked {
    rank: u32,
    fingerprint: u64,
    community: SeedCommunity,
}

/// The running top-`L` set ordered by `(score desc, rank asc)` with
/// fingerprint-keyed duplicate elimination keeping the smallest rank.
struct RankedCollector {
    capacity: usize,
    entries: Vec<Ranked>,
}

impl RankedCollector {
    fn new(capacity: usize) -> Self {
        RankedCollector {
            capacity,
            entries: Vec::with_capacity(capacity + 1),
        }
    }

    /// Whether the collector already holds `L` confirmed communities.
    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `σ_L`: the `L`-th best confirmed score, `-∞` while under capacity.
    fn sigma_l(&self) -> f64 {
        if self.entries.len() < self.capacity {
            f64::NEG_INFINITY
        } else {
            self.entries
                .last()
                .map_or(f64::NEG_INFINITY, |e| e.community.influential_score)
        }
    }

    /// Slot keeping `(score desc, rank asc)` order.
    fn position(&self, score: f64, rank: u32) -> usize {
        self.entries.partition_point(|e| {
            e.community.influential_score > score
                || (e.community.influential_score == score && e.rank < rank)
        })
    }

    fn insert(&mut self, rank: u32, fingerprint: u64, community: SeedCommunity) {
        if let Some(pos) = self.entries.iter().position(|e| {
            e.fingerprint == fingerprint && e.community.vertices == community.vertices
        }) {
            // Same vertex set: the score is a pure function of the set, so
            // in practice this is always a tie and only the rank (which
            // centre "owns" the community) can improve.
            let existing = &self.entries[pos];
            let better = community.influential_score > existing.community.influential_score
                || (community.influential_score == existing.community.influential_score
                    && rank < existing.rank);
            if better {
                self.entries.remove(pos);
                let at = self.position(community.influential_score, rank);
                self.entries.insert(
                    at,
                    Ranked {
                        rank,
                        fingerprint,
                        community,
                    },
                );
            }
            return;
        }
        let at = self.position(community.influential_score, rank);
        if at >= self.capacity {
            return; // L better-(score, rank) entries already exist
        }
        self.entries.insert(
            at,
            Ranked {
                rank,
                fingerprint,
                community,
            },
        );
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
    }

    fn into_sorted(self) -> Vec<SeedCommunity> {
        self.entries.into_iter().map(|e| e.community).collect()
    }
}

/// Runs the progressive kernel over one validated query.
///
/// Generic over the exact-refinement step: `refine` maps one candidate
/// centre to its maximal seed community (or `None`), against the kernel's
/// reused [`TraversalWorkspace`]. [`crate::topl::TopLProcessor`] passes
/// keyword-constrained extraction; any future path with a different
/// refinement (the D-TopL candidate stage rides through `TopLProcessor`)
/// plugs in here without touching the traversal.
pub(crate) fn run_progressive<F>(
    graph: &SocialNetwork,
    index: &CommunityIndex,
    query: &TopLQuery,
    toggles: PruningToggles,
    mut refine: F,
) -> (Vec<SeedCommunity>, PruningStats)
where
    F: FnMut(&mut TraversalWorkspace, VertexId) -> Option<VertexSubset>,
{
    let mut stats = PruningStats::new();
    let query_signature = query.keyword_signature(index.signature_bits());
    let evaluator = InfluenceEvaluator::new(graph, InfluenceConfig { theta: query.theta });
    let mut collector = RankedCollector::new(query.l);
    let mut cache: Vec<CachedCommunity> = Vec::new();
    // The offline seed bounds are computed at support SEED_BOUND_SUPPORT;
    // they only dominate communities of queries at least that demanding.
    let use_seed_bound = query.support >= SEED_BOUND_SUPPORT;

    // Sequential pre-scan of every vertex's cheap verdict (see
    // [`scan_candidates`]): leaves pop in bound order, which is *random*
    // order over the flat aggregate tables — at benchmark scale the four
    // dependent cache misses per vertex cost several times the bound
    // arithmetic itself. One streaming pass computes the same verdicts at
    // memory bandwidth; the pop loop then reads nine bytes per vertex.
    let scan = scan_candidates(index, query, &query_signature, toggles, use_seed_bound);

    let mut heap = BinaryHeap::new();
    heap.push(Entry::Node {
        key: f64::INFINITY,
        id: index.root(),
    });
    let mut next_rank: u32 = 0;

    with_thread_workspace(|ws| {
        while let Some(entry) = heap.pop() {
            stats.heap_pops += 1;
            // Termination must be strict (see the module docs): every open
            // bound below sigma_L is provably outside the answer, a tie is
            // not.
            if toggles.score && entry.key() < collector.sigma_l() {
                stats.early_termination_pops += 1;
                stats.early_terminated_entries += heap.len();
                break;
            }
            match entry {
                Entry::Node { id, .. } => match index.node(id) {
                    NodeRef::Leaf { vertices } => {
                        for &v in vertices {
                            let rank = next_rank;
                            next_rank += 1;
                            let vi = v.index();
                            let tag = scan.tags[vi];
                            if tag == TAG_KEYWORD_PRUNED {
                                stats.candidate_keyword_pruned += 1;
                                continue;
                            }
                            if tag == TAG_SUPPORT_PRUNED {
                                stats.candidate_support_pruned += 1;
                                continue;
                            }
                            if tag == TAG_KEY_TIGHTENED {
                                stats.bound_tightenings += 1;
                            }
                            let key = scan.keys[vi];
                            if toggles.score && key < collector.sigma_l() {
                                stats.candidate_score_pruned += 1;
                                continue;
                            }
                            // Warm-up: while fewer than L answers are
                            // confirmed, sigma_L is -inf and nothing prunes,
                            // so deferring just floods the heap (node bounds
                            // dominate candidate keys and the whole tree
                            // would drain first). Refining survivors
                            // immediately raises sigma_L after the first
                            // leaf; refining extra candidates never changes
                            // the answer (the collector is insertion-order
                            // invariant), it only spends a few extra exact
                            // verifications — all of which the eager path
                            // performs too.
                            if toggles.score && !collector.is_full() {
                                refine_candidate(
                                    ws,
                                    &mut refine,
                                    &evaluator,
                                    query,
                                    rank,
                                    v,
                                    &mut collector,
                                    &mut cache,
                                    &mut stats,
                                );
                            } else {
                                heap.push(Entry::Candidate {
                                    key,
                                    rank,
                                    center: v,
                                });
                            }
                        }
                    }
                    NodeRef::Internal { children } => {
                        for &child in children {
                            let child = child as usize;
                            let aggregate = index.aggregate(child, query.radius);
                            if toggles.keyword
                                && pruning::can_prune_by_keyword_signature(
                                    aggregate.keyword_signature,
                                    &query_signature,
                                )
                            {
                                stats.index_keyword_pruned += 1;
                                continue;
                            }
                            if toggles.support
                                && pruning::can_prune_by_support(
                                    aggregate.support_upper_bound,
                                    query.support,
                                )
                            {
                                stats.index_support_pruned += 1;
                                continue;
                            }
                            let bound = index.node_score_bound(child, query.radius, query.theta);
                            if toggles.score && bound < collector.sigma_l() {
                                stats.index_score_pruned += 1;
                                continue;
                            }
                            heap.push(Entry::Node {
                                key: bound,
                                id: child,
                            });
                        }
                    }
                },
                Entry::Candidate { rank, center, .. } => {
                    refine_candidate(
                        ws,
                        &mut refine,
                        &evaluator,
                        query,
                        rank,
                        center,
                        &mut collector,
                        &mut cache,
                        &mut stats,
                    );
                }
            }
        }
    });

    (collector.into_sorted(), stats)
}

/// Pruned by the keyword signature — no region vertex carries any query
/// keyword.
const TAG_KEYWORD_PRUNED: u8 = 0;
/// Pruned by the support upper bound.
const TAG_SUPPORT_PRUNED: u8 = 1;
/// Survives the static filters; the key is the region bound.
const TAG_KEY: u8 = 2;
/// Survives the static filters; the offline seed bound was strictly tighter
/// than the region bound (counted as a `bound_tightenings` when consumed).
const TAG_KEY_TIGHTENED: u8 = 3;

/// Per-vertex verdict of the candidate filters, precomputed in one pass.
struct CandidateScan {
    tags: Vec<u8>,
    keys: Vec<f64>,
}

/// Applies the candidate-level keyword/support filters and bound arithmetic
/// to **every** vertex in one sequential sweep over the flat aggregate and
/// seed-bound tables.
///
/// The verdicts themselves depend only on the query (never on σ_L, which is
/// checked per pop), so hoisting them out of the traversal changes no
/// behaviour: the pop loop charges each [`PruningStats`] counter at the
/// moment the vertex's leaf pops, exactly as the per-pop formulation did.
/// What changes is the memory access pattern — leaf pops are bound-ordered,
/// i.e. effectively random over tables that dwarf the cache, and the four
/// dependent lookups per vertex (signature, support, region score, seed
/// score) each miss. The streaming pass pays sequential bandwidth instead,
/// a ~4x win on the candidate-scan share of the 50k benchmark. The wasted
/// work when early termination strands unvisited leaves is bounded by the
/// same sweep cost (about a millisecond at 50k vertices).
fn scan_candidates(
    index: &CommunityIndex,
    query: &TopLQuery,
    query_signature: &icde_graph::BitVector,
    toggles: PruningToggles,
    use_seed_bound: bool,
) -> CandidateScan {
    let n = index.precomputed.num_vertices();
    let mut tags = vec![TAG_KEY; n];
    let mut keys = vec![0.0f64; n];
    for (vi, (tag, key)) in tags.iter_mut().zip(&mut keys).enumerate() {
        let v = VertexId::from_index(vi);
        let aggregate = index.precomputed.aggregate(v, query.radius);
        if toggles.keyword
            && pruning::can_prune_by_keyword_signature(aggregate.keyword_signature, query_signature)
        {
            *tag = TAG_KEYWORD_PRUNED;
            continue;
        }
        if toggles.support
            && pruning::can_prune_by_support(aggregate.support_upper_bound, query.support)
        {
            *tag = TAG_SUPPORT_PRUNED;
            continue;
        }
        let region = index.precomputed.score_bound(v, query.radius, query.theta);
        *key = if use_seed_bound {
            let seed = index
                .precomputed
                .seed_score_bound(v, query.radius, query.theta);
            if seed < region {
                *tag = TAG_KEY_TIGHTENED;
                seed
            } else {
                region
            }
        } else {
            region
        };
    }
    CandidateScan { tags, keys }
}

/// Exactly refines one candidate centre: extract its maximal seed community,
/// look the vertex set up in the answer cache (one exact influence expansion
/// per *distinct* community), and offer the result to the collector under
/// the candidate's canonical rank.
#[allow(clippy::too_many_arguments)]
fn refine_candidate<F>(
    ws: &mut TraversalWorkspace,
    refine: &mut F,
    evaluator: &InfluenceEvaluator<'_>,
    query: &TopLQuery,
    rank: u32,
    center: VertexId,
    collector: &mut RankedCollector,
    cache: &mut Vec<CachedCommunity>,
    stats: &mut PruningStats,
) where
    F: FnMut(&mut TraversalWorkspace, VertexId) -> Option<VertexSubset>,
{
    match refine(ws, center) {
        None => stats.candidates_without_community += 1,
        Some(vertices) => {
            stats.candidates_refined += 1;
            let fingerprint = vertex_set_fingerprint(&vertices);
            let (score, influenced_size) = match cache
                .iter()
                .find(|c| c.fingerprint == fingerprint && c.vertices == vertices)
            {
                Some(hit) => (hit.score, hit.influenced_size),
                None => {
                    stats.exact_verifications += 1;
                    let influenced =
                        evaluator.influenced_community_with_theta_in(ws, &vertices, query.theta);
                    let score = influenced.influential_score();
                    let influenced_size = influenced.len();
                    cache.push(CachedCommunity {
                        fingerprint,
                        vertices: vertices.clone(),
                        score,
                        influenced_size,
                    });
                    (score, influenced_size)
                }
            };
            collector.insert(
                rank,
                fingerprint,
                SeedCommunity {
                    center,
                    vertices,
                    influential_score: score,
                    influenced_size,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn community(score: f64, ids: &[u32]) -> SeedCommunity {
        SeedCommunity {
            center: VertexId(ids[0]),
            vertices: ids.iter().map(|i| VertexId(*i)).collect(),
            influential_score: score,
            influenced_size: ids.len(),
        }
    }

    fn insert(c: &mut RankedCollector, rank: u32, sc: SeedCommunity) {
        let fp = vertex_set_fingerprint(&sc.vertices);
        c.insert(rank, fp, sc);
    }

    #[test]
    fn fingerprint_depends_only_on_the_set() {
        let a: VertexSubset = [3u32, 1, 2].iter().map(|i| VertexId(*i)).collect();
        let b: VertexSubset = [1u32, 2, 3].iter().map(|i| VertexId(*i)).collect();
        let c: VertexSubset = [1u32, 2, 4].iter().map(|i| VertexId(*i)).collect();
        assert_eq!(vertex_set_fingerprint(&a), vertex_set_fingerprint(&b));
        assert_ne!(vertex_set_fingerprint(&a), vertex_set_fingerprint(&c));
    }

    #[test]
    fn collector_orders_ties_by_rank_not_arrival() {
        // two distinct equal-scoring sets arriving out of rank order must
        // come back in rank order — the eager path's arrival order
        let mut c = RankedCollector::new(3);
        insert(&mut c, 7, community(2.0, &[1, 2, 3]));
        insert(&mut c, 2, community(2.0, &[4, 5, 6]));
        insert(&mut c, 5, community(3.0, &[7, 8, 9]));
        let out = c.into_sorted();
        assert_eq!(out[0].vertices.as_slice()[0], VertexId(7));
        assert_eq!(out[1].vertices.as_slice()[0], VertexId(4)); // rank 2
        assert_eq!(out[2].vertices.as_slice()[0], VertexId(1)); // rank 7
    }

    #[test]
    fn collector_dedup_keeps_the_smallest_rank() {
        let mut c = RankedCollector::new(2);
        insert(&mut c, 9, community(2.0, &[1, 2, 3]));
        insert(&mut c, 4, community(2.0, &[1, 2, 3])); // same set, earlier rank
        insert(&mut c, 6, community(2.0, &[4, 5, 6]));
        let out = c.into_sorted();
        assert_eq!(out.len(), 2);
        // the duplicate kept rank 4, so it now precedes the rank-6 entry
        assert_eq!(out[0].vertices.as_slice()[0], VertexId(1));
        assert_eq!(out[1].vertices.as_slice()[0], VertexId(4));
        // and its centre is the rank-4 copy's centre
        assert_eq!(out[0].center, VertexId(1));
    }

    #[test]
    fn collector_eviction_respects_rank_ties_at_the_boundary() {
        let mut c = RankedCollector::new(2);
        insert(&mut c, 3, community(1.0, &[1]));
        insert(&mut c, 4, community(1.0, &[2]));
        // equal score, smaller rank: pushes the rank-4 entry out
        insert(&mut c, 1, community(1.0, &[3]));
        let out = c.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].vertices.as_slice()[0], VertexId(3));
        assert_eq!(out[1].vertices.as_slice()[0], VertexId(1));
        // equal score, larger rank than the current floor: dropped
        let mut c = RankedCollector::new(1);
        insert(&mut c, 1, community(1.0, &[1]));
        insert(&mut c, 2, community(1.0, &[2]));
        assert_eq!(c.into_sorted()[0].vertices.as_slice()[0], VertexId(1));
    }

    #[test]
    fn heap_entry_order_matches_the_eager_heap() {
        let mut heap = BinaryHeap::new();
        heap.push(Entry::Node { key: 1.0, id: 4 });
        heap.push(Entry::Node { key: 1.0, id: 9 });
        heap.push(Entry::Candidate {
            key: 1.0,
            rank: 0,
            center: VertexId(0),
        });
        heap.push(Entry::Candidate {
            key: 1.0,
            rank: 3,
            center: VertexId(1),
        });
        heap.push(Entry::Node { key: 2.0, id: 1 });
        // key desc; ties: nodes (larger id first) before candidates
        // (smaller rank first)
        let popped: Vec<String> = std::iter::from_fn(|| heap.pop())
            .map(|e| match e {
                Entry::Node { id, .. } => format!("n{id}"),
                Entry::Candidate { rank, .. } => format!("c{rank}"),
            })
            .collect();
        assert_eq!(popped, ["n1", "n9", "n4", "c0", "c3"]);
    }
}
