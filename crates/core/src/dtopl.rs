//! Diversified TopL-ICDE processing (Section VII).
//!
//! DTopL-ICDE returns one *set* of `L` seed communities maximising the
//! diversity score `D(S) = Σ_v max_{g∈S} cpp(g, v)` — collaborative influence
//! with overlaps counted once. The problem is NP-hard (Lemma 8, by reduction
//! from Maximum Coverage), so the paper's algorithm is a two-step
//! approximation:
//!
//! 1. fetch the top-`n·L` most influential candidate communities with the
//!    TopL-ICDE processor (Algorithm 3),
//! 2. greedily pick `L` of them by marginal diversity gain. The
//!    [`DTopLStrategy::GreedyWithPruning`] variant (Algorithm 4) is the lazy
//!    greedy of Lemma 9: stale gains are upper bounds (submodularity), so a
//!    candidate is only re-evaluated when it reaches the top of the heap.
//!
//! [`DTopLStrategy::GreedyWithoutPruning`] re-evaluates every remaining
//! candidate each round and [`DTopLStrategy::Optimal`] enumerates all
//! `C(nL, L)` subsets — both exist as evaluation baselines (Figure 6).

use crate::error::CoreResult;
use crate::index::CommunityIndex;
use crate::query::TopLQuery;
use crate::seed::SeedCommunity;
use crate::stats::PruningStats;
use crate::topl::TopLProcessor;
use icde_graph::SocialNetwork;
use icde_influence::{DiversityState, InfluenceConfig, InfluenceEvaluator, InfluencedCommunity};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Parameters of a DTopL-ICDE query: the base TopL-ICDE parameters plus the
/// candidate multiplier `n` (the greedy refinement works over `n·L`
/// candidates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DTopLQuery {
    /// The underlying TopL-ICDE parameters (`Q`, `k`, `r`, `θ`, `L`).
    pub base: TopLQuery,
    /// Candidate multiplier `n > 1` (Table III default: 3).
    pub candidate_multiplier: usize,
}

impl DTopLQuery {
    /// Creates a DTopL-ICDE query.
    pub fn new(base: TopLQuery, candidate_multiplier: usize) -> Self {
        DTopLQuery {
            base,
            candidate_multiplier,
        }
    }

    /// The paper's default multiplier `n = 3`.
    pub fn with_default_multiplier(base: TopLQuery) -> Self {
        DTopLQuery {
            base,
            candidate_multiplier: 3,
        }
    }
}

/// Candidate-refinement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DTopLStrategy {
    /// Algorithm 4: lazy greedy with diversity-score pruning (Lemma 9).
    GreedyWithPruning,
    /// Greedy without pruning: recompute every candidate's marginal gain in
    /// every round.
    GreedyWithoutPruning,
    /// Exact optimum by exhaustive subset enumeration (exponential; only
    /// viable for small `n·L`).
    Optimal,
}

/// Result of one DTopL-ICDE query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DTopLAnswer {
    /// The selected set `S` of (up to) `L` seed communities, in selection
    /// order for the greedy strategies.
    pub communities: Vec<SeedCommunity>,
    /// The diversity score `D(S)` of the selected set.
    pub diversity_score: f64,
    /// Pruning counters (TopL phase + diversity pruning).
    pub stats: PruningStats,
    /// Wall-clock time spent inside the processor (including the TopL phase).
    pub elapsed: Duration,
}

/// Heap entry for the lazy greedy: a candidate index with a (possibly stale)
/// gain upper bound and the round in which that bound was computed.
#[derive(Debug)]
struct LazyEntry {
    gain: f64,
    round: usize,
    candidate: usize,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.candidate == other.candidate
    }
}
impl Eq for LazyEntry {}
impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.candidate.cmp(&self.candidate))
    }
}
impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Answers DTopL-ICDE queries over one graph + index pair.
#[derive(Debug, Clone, Copy)]
pub struct DTopLProcessor<'a> {
    graph: &'a SocialNetwork,
    index: &'a CommunityIndex,
}

impl<'a> DTopLProcessor<'a> {
    /// Creates a processor. The index must have been built over `graph`.
    pub fn new(graph: &'a SocialNetwork, index: &'a CommunityIndex) -> Self {
        DTopLProcessor { graph, index }
    }

    /// Answers `query` with the requested strategy.
    pub fn run(&self, query: &DTopLQuery, strategy: DTopLStrategy) -> CoreResult<DTopLAnswer> {
        let start = Instant::now();
        let l = query.base.l;
        let candidate_count = l.saturating_mul(query.candidate_multiplier.max(1));

        // Step 1: top-(nL) most influential candidates.
        let topl_query = query.base.with_result_size(candidate_count.max(l));
        let topl = TopLProcessor::new(self.graph, self.index).run(&topl_query)?;
        let mut stats = topl.stats;
        let candidates = topl.communities;

        // Influenced communities of every candidate drive the diversity math.
        let evaluator = InfluenceEvaluator::new(
            self.graph,
            InfluenceConfig {
                theta: query.base.theta,
            },
        );
        let influenced: Vec<InfluencedCommunity> = candidates
            .iter()
            .map(|c| evaluator.influenced_community(&c.vertices))
            .collect();

        let selected_indices = match strategy {
            DTopLStrategy::GreedyWithPruning => self.lazy_greedy(&influenced, l, &mut stats),
            DTopLStrategy::GreedyWithoutPruning => self.plain_greedy(&influenced, l),
            DTopLStrategy::Optimal => self.exhaustive(&influenced, l),
        };

        let mut state = DiversityState::new();
        for &i in &selected_indices {
            state.add(&influenced[i]);
        }
        let communities = selected_indices
            .iter()
            .map(|&i| candidates[i].clone())
            .collect();

        Ok(DTopLAnswer {
            communities,
            diversity_score: state.score(),
            stats,
            elapsed: start.elapsed(),
        })
    }

    /// Algorithm 4: lazy greedy with stale-gain pruning.
    fn lazy_greedy(
        &self,
        influenced: &[InfluencedCommunity],
        l: usize,
        stats: &mut PruningStats,
    ) -> Vec<usize> {
        let mut heap: BinaryHeap<LazyEntry> = influenced
            .iter()
            .enumerate()
            .map(|(i, c)| LazyEntry {
                gain: c.influential_score(),
                round: 0,
                candidate: i,
            })
            .collect();
        let mut state = DiversityState::new();
        let mut selected = Vec::with_capacity(l);
        let mut round = 0usize;

        while selected.len() < l {
            let Some(entry) = heap.pop() else { break };
            if entry.round == round {
                // Fresh gain: by Lemma 9 nothing else can beat it this round,
                // so every other candidate skipped its re-evaluation.
                stats.diversity_pruned += heap.len();
                state.add(&influenced[entry.candidate]);
                selected.push(entry.candidate);
                round += 1;
            } else {
                // Stale gain: recompute against the current answer set and
                // push back.
                let fresh = state.gain(&influenced[entry.candidate]);
                heap.push(LazyEntry {
                    gain: fresh,
                    round,
                    candidate: entry.candidate,
                });
            }
        }
        selected
    }

    /// Greedy without pruning: every remaining candidate is re-evaluated each
    /// round.
    fn plain_greedy(&self, influenced: &[InfluencedCommunity], l: usize) -> Vec<usize> {
        let mut remaining: Vec<usize> = (0..influenced.len()).collect();
        let mut state = DiversityState::new();
        let mut selected = Vec::with_capacity(l);
        while selected.len() < l && !remaining.is_empty() {
            let (pos, &best) = remaining
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    state
                        .gain(&influenced[a])
                        .partial_cmp(&state.gain(&influenced[b]))
                        .unwrap_or(Ordering::Equal)
                })
                .expect("remaining is non-empty");
            state.add(&influenced[best]);
            selected.push(best);
            remaining.remove(pos);
        }
        selected
    }

    /// Exact optimum by exhaustive enumeration of all `C(n, l)` subsets.
    fn exhaustive(&self, influenced: &[InfluencedCommunity], l: usize) -> Vec<usize> {
        let n = influenced.len();
        if n == 0 {
            return Vec::new();
        }
        let l = l.min(n);
        let mut best_set: Vec<usize> = Vec::new();
        let mut best_score = f64::NEG_INFINITY;
        let mut combination: Vec<usize> = (0..l).collect();
        loop {
            let refs: Vec<&InfluencedCommunity> =
                combination.iter().map(|&i| &influenced[i]).collect();
            let score = icde_influence::diversity_score(&refs);
            if score > best_score {
                best_score = score;
                best_set = combination.clone();
            }
            // next combination in lexicographic order
            let mut i = l;
            loop {
                if i == 0 {
                    return best_set;
                }
                i -= 1;
                if combination[i] != i + n - l {
                    combination[i] += 1;
                    for j in (i + 1)..l {
                        combination[j] = combination[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 200, 21)
            .with_keyword_domain(10)
            .generate()
    }

    fn index(g: &SocialNetwork) -> CommunityIndex {
        IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(g)
    }

    fn query(l: usize, n: usize) -> DTopLQuery {
        DTopLQuery::new(
            TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 3, 2, 0.2, l),
            n,
        )
    }

    #[test]
    fn greedy_strategies_agree_on_selection_quality() {
        let g = graph();
        let idx = index(&g);
        let processor = DTopLProcessor::new(&g, &idx);
        let q = query(3, 3);
        let wp = processor.run(&q, DTopLStrategy::GreedyWithPruning).unwrap();
        let wop = processor
            .run(&q, DTopLStrategy::GreedyWithoutPruning)
            .unwrap();
        // Lazy greedy and plain greedy pick sets with identical diversity
        // (the lazy version only skips redundant recomputations).
        assert!((wp.diversity_score - wop.diversity_score).abs() < 1e-6);
        assert_eq!(wp.communities.len(), wop.communities.len());
        assert!(
            wp.stats.diversity_pruned > 0,
            "lazy greedy should skip recomputations"
        );
    }

    #[test]
    fn greedy_achieves_high_fraction_of_optimal() {
        let g = graph();
        let idx = index(&g);
        let processor = DTopLProcessor::new(&g, &idx);
        let q = query(2, 3);
        let greedy = processor.run(&q, DTopLStrategy::GreedyWithPruning).unwrap();
        let optimal = processor.run(&q, DTopLStrategy::Optimal).unwrap();
        assert!(optimal.diversity_score + 1e-9 >= greedy.diversity_score);
        // (1 - 1/e) ≈ 0.63 guarantee; in practice the ratio is near 1
        assert!(
            greedy.diversity_score >= 0.63 * optimal.diversity_score,
            "greedy {} vs optimal {}",
            greedy.diversity_score,
            optimal.diversity_score
        );
    }

    #[test]
    fn diversity_no_larger_than_sum_of_scores() {
        let g = graph();
        let idx = index(&g);
        let q = query(3, 2);
        let answer = DTopLProcessor::new(&g, &idx)
            .run(&q, DTopLStrategy::GreedyWithPruning)
            .unwrap();
        let sum: f64 = answer.communities.iter().map(|c| c.influential_score).sum();
        assert!(answer.diversity_score <= sum + 1e-9);
        assert!(answer.diversity_score > 0.0);
        assert!(answer.communities.len() <= 3);
    }

    #[test]
    fn returns_at_most_l_communities_in_selection_order() {
        let g = graph();
        let idx = index(&g);
        let q = query(4, 2);
        let answer = DTopLProcessor::new(&g, &idx)
            .run(&q, DTopLStrategy::GreedyWithPruning)
            .unwrap();
        assert!(answer.communities.len() <= 4);
        // selection order: first pick is the highest influential score among
        // candidates (gain w.r.t. empty set equals the influential score)
        if answer.communities.len() > 1 {
            let first = answer.communities[0].influential_score;
            for c in &answer.communities[1..] {
                assert!(first + 1e-9 >= c.influential_score);
            }
        }
    }

    #[test]
    fn invalid_base_query_propagates_error() {
        let g = graph();
        let idx = index(&g);
        let bad = DTopLQuery::new(TopLQuery::new(KeywordSet::new(), 3, 2, 0.2, 3), 2);
        assert!(DTopLProcessor::new(&g, &idx)
            .run(&bad, DTopLStrategy::GreedyWithPruning)
            .is_err());
    }

    #[test]
    fn exhaustive_on_empty_candidate_set() {
        let g = graph();
        let idx = index(&g);
        // impossible keyword -> no candidates at all
        let q = DTopLQuery::new(TopLQuery::new(KeywordSet::from_ids([900]), 3, 2, 0.2, 2), 2);
        for strategy in [
            DTopLStrategy::GreedyWithPruning,
            DTopLStrategy::GreedyWithoutPruning,
            DTopLStrategy::Optimal,
        ] {
            let answer = DTopLProcessor::new(&g, &idx).run(&q, strategy).unwrap();
            assert!(answer.communities.is_empty());
            assert_eq!(answer.diversity_score, 0.0);
        }
    }

    #[test]
    fn default_multiplier_is_three() {
        let q =
            DTopLQuery::with_default_multiplier(TopLQuery::with_defaults(KeywordSet::from_ids([
                1,
            ])));
        assert_eq!(q.candidate_multiplier, 3);
    }
}
