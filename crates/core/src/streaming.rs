//! D-TopL streaming maintenance: edge-update batches applied against a live
//! graph + index pair and republished through the serving runtime.
//!
//! The offline pipeline treats the social network as frozen; this module is
//! the *online update* half of the D-TopL loop. A [`StreamingMaintainer`]
//! owns the working graph + index pair and, per update batch:
//!
//! 1. applies each edge insert/remove as an **O(degree · log degree) delta
//!    overlay patch** ([`SocialNetwork::apply_edge_inserted`] /
//!    [`SocialNetwork::apply_edge_removed`]) — no CSR rebuild,
//! 2. patches the edge-indexed truss supports incrementally (only the
//!    triangles the edge opens or closes change),
//! 3. recomputes the per-vertex aggregates of the **affected balls only**
//!    ([`PrecomputedData::recompute_vertices`] over
//!    `hop(u, r_max + slack) ∪ hop(v, r_max + slack)` per update),
//! 4. compacts the overlay back into a fresh CSR once it exceeds the
//!    configured fraction of the base edge count, applying the returned
//!    edge-id remap to the supports, and
//! 5. re-aggregates the index tree over the patched data.
//!
//! [`StreamingMaintainer::spawn`] moves the maintainer onto a dedicated
//! maintenance thread that drains batches from a channel and hot-swaps each
//! refreshed snapshot into a [`ServingRuntime`] via
//! [`ServingRuntime::publish`], so queries keep draining on the previous
//! snapshot while the next one is prepared. The refreshed index is *exact*:
//! observationally identical to one rebuilt from scratch at the same logical
//! graph state.

use crate::error::CoreResult;
use crate::index::{CommunityIndex, IndexBuilder};
use crate::maintenance::{affected_vertices, influence_slack_bound};
use crate::precompute::MaintenanceArena;
use crate::serving::{ServingRuntime, ServingSnapshot};
use icde_graph::graph::DEFAULT_COMPACT_THRESHOLD;
use icde_graph::{SocialNetwork, VertexId, Weight};
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// One edge update in a D-TopL stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdate {
    /// Insert the edge `{u, v}` with directed activation probabilities
    /// `p_uv` (u → v) and `p_vu` (v → u).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Activation probability u → v.
        p_uv: Weight,
        /// Activation probability v → u.
        p_vu: Weight,
    },
    /// Remove the existing edge `{u, v}`.
    Remove {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
}

/// Counters accumulated by a [`StreamingMaintainer`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Batches applied.
    pub batches: u64,
    /// Edge insertions applied.
    pub inserts_applied: u64,
    /// Edge removals applied.
    pub removes_applied: u64,
    /// Updates skipped (duplicate inserts, removals of missing edges, …).
    pub updates_skipped: u64,
    /// Vertices whose aggregates were recomputed.
    pub vertices_recomputed: u64,
    /// Overlay compactions folded back into the CSR base.
    pub compactions: u64,
}

impl StreamStats {
    /// Total updates applied (inserts + removes).
    pub fn updates_applied(&self) -> u64 {
        self.inserts_applied + self.removes_applied
    }
}

/// Default bound on a spawned maintenance thread's pending-batch queue:
/// [`UpdateFeed::push`] blocks once this many batches are queued, so a
/// producer that outruns the maintainer is backpressured instead of growing
/// the queue without limit.
pub const DEFAULT_UPDATE_QUEUE_CAP: usize = 64;

/// Largest directed activation probability over the live edges (O(m) scan).
fn scan_p_max(graph: &SocialNetwork) -> f64 {
    let mut p_max = 0.0f64;
    for (e, a, b) in graph.edges() {
        p_max = p_max
            .max(graph.directed_weight(e, a))
            .max(graph.directed_weight(e, b));
    }
    p_max
}

/// Owns a mutable graph + index working pair and keeps both exact under a
/// stream of edge updates (see the module docs for the per-batch pipeline).
pub struct StreamingMaintainer {
    graph: SocialNetwork,
    /// Always `Some` between batches; taken during a batch because
    /// [`IndexBuilder::build_from_precomputed`] consumes the data.
    index: Option<CommunityIndex>,
    compact_threshold: f64,
    /// Monotone upper bound on the largest directed edge weight of the
    /// working graph, maintained incrementally so small batches avoid an
    /// O(m) rescan: folded up on inserts, refreshed exactly on compaction.
    /// Removals may leave it stale-high, which only widens the refresh
    /// radius — still correct, just conservative.
    p_max: f64,
    /// Ball-cover-sized recompute scratch reused across batches: the paged
    /// workspaces and the sparse signature arena stay allocated (and the
    /// signature rows stay warm — keywords never change under edge updates)
    /// instead of being rebuilt per refresh.
    arena: MaintenanceArena,
    stats: StreamStats,
}

impl StreamingMaintainer {
    /// Wraps a graph and the index built over it. The pair is typically the
    /// same one published to a [`ServingRuntime`] as its initial snapshot.
    pub fn new(graph: SocialNetwork, index: CommunityIndex) -> Self {
        let p_max = scan_p_max(&graph);
        StreamingMaintainer {
            graph,
            index: Some(index),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            p_max,
            arena: MaintenanceArena::new(),
            stats: StreamStats::default(),
        }
    }

    /// Sets the overlay fraction above which a batch triggers compaction
    /// (default [`DEFAULT_COMPACT_THRESHOLD`]).
    pub fn with_compact_threshold(mut self, threshold: f64) -> Self {
        self.compact_threshold = threshold;
        self
    }

    /// The current working graph.
    pub fn graph(&self) -> &SocialNetwork {
        &self.graph
    }

    /// The current working index.
    pub fn index(&self) -> &CommunityIndex {
        self.index
            .as_ref()
            .expect("maintainer always holds an index")
    }

    /// The lifetime counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The recompute scratch arena reused across batches (telemetry:
    /// resident bytes and warm signature rows).
    pub fn arena(&self) -> &MaintenanceArena {
        &self.arena
    }

    /// Applies one batch of updates and refreshes the index; returns the
    /// number of vertices whose aggregates were recomputed. Invalid updates
    /// (duplicate insert, removal of a missing edge, unknown vertex, …) are
    /// skipped and counted, so a noisy stream cannot wedge the maintainer.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> usize {
        let index = self.index.take().expect("maintainer always holds an index");
        let fanout = index.fanout();
        let leaf_capacity = index.leaf_capacity();
        let mut data = index.precomputed;
        let r_max = data.config.r_max;

        // The refresh radius bound must hold on every intermediate graph of
        // the batch, so fold the weights of pending insertions into the
        // running p_max bound before any of them is applied.
        let theta_min = data
            .config
            .thresholds
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        for update in updates {
            if let EdgeUpdate::Insert { p_uv, p_vu, .. } = *update {
                self.p_max = self.p_max.max(p_uv).max(p_vu);
            }
        }
        let slack = influence_slack_bound(theta_min, self.p_max).unwrap_or(u32::MAX / 2);

        let mut affected: HashSet<VertexId> = HashSet::new();
        for &update in updates {
            match update {
                EdgeUpdate::Insert { u, v, p_uv, p_vu } => {
                    match self.graph.apply_edge_inserted(u, v, p_uv, p_vu) {
                        Ok(e) => {
                            data.patch_supports_after_insertion(&self.graph, u, v, e);
                            affected.extend(affected_vertices(&self.graph, u, v, r_max, slack));
                            self.stats.inserts_applied += 1;
                        }
                        Err(_) => self.stats.updates_skipped += 1,
                    }
                }
                EdgeUpdate::Remove { u, v } => {
                    // measure the ball while the edge still exists: it may be
                    // a bridge, and the post-deletion ball would then no
                    // longer reach the far side
                    let ball = affected_vertices(&self.graph, u, v, r_max, slack);
                    match self.graph.apply_edge_removed(u, v) {
                        Ok(e) => {
                            data.patch_supports_after_removal(&self.graph, u, v, e);
                            affected.extend(ball);
                            self.stats.removes_applied += 1;
                        }
                        Err(_) => self.stats.updates_skipped += 1,
                    }
                }
            }
        }

        if let Some(remap) = self.graph.maybe_compact(self.compact_threshold) {
            data.apply_edge_id_remap(&remap);
            self.p_max = scan_p_max(&self.graph);
            self.stats.compactions += 1;
        }

        let mut batch: Vec<VertexId> = affected.into_iter().collect();
        batch.sort_unstable();
        // keywords are immutable under edge updates (and compaction remaps
        // edge ids, not vertices), so the arena's cached signature rows stay
        // valid across the maintainer's whole lifetime
        data.recompute_vertices_with(&self.graph, &batch, &mut self.arena);
        self.stats.vertices_recomputed += batch.len() as u64;
        self.stats.batches += 1;

        let rebuilt = IndexBuilder::new(data.config.clone())
            .with_fanout(fanout)
            .with_leaf_capacity(leaf_capacity)
            .build_from_precomputed(&self.graph, data);
        self.index = Some(rebuilt);
        batch.len()
    }

    /// Folds any pending overlay back into the CSR base, applies the
    /// resulting edge-id remap to the precomputed supports, and rebuilds the
    /// index over the compacted graph. Snapshot writers serialize the *live*
    /// edge table — implicitly renumbering edge ids past tombstone holes —
    /// so anything persisting the maintainer's graph + index pair must call
    /// this first, or the saved supports would stay keyed by the stale
    /// pre-compaction id space and silently misalign after a reload. Returns
    /// `true` when a compaction actually ran (no-op on an empty overlay).
    pub fn compact_now(&mut self) -> bool {
        if !self.graph.has_overlay() {
            return false;
        }
        let index = self.index.take().expect("maintainer always holds an index");
        let fanout = index.fanout();
        let leaf_capacity = index.leaf_capacity();
        let mut data = index.precomputed;
        let remap = self.graph.compact();
        data.apply_edge_id_remap(&remap);
        self.p_max = scan_p_max(&self.graph);
        self.stats.compactions += 1;
        let rebuilt = IndexBuilder::new(data.config.clone())
            .with_fanout(fanout)
            .with_leaf_capacity(leaf_capacity)
            .build_from_precomputed(&self.graph, data);
        self.index = Some(rebuilt);
        true
    }

    /// Publishes the current working pair to a serving runtime as a fresh
    /// snapshot (graph and index are cloned; the maintainer keeps mutating
    /// its own copy).
    pub fn publish_to(&self, runtime: &ServingRuntime) -> CoreResult<Arc<ServingSnapshot>> {
        runtime.publish(self.graph.clone(), self.index().clone())
    }

    /// Moves the maintainer onto a dedicated maintenance thread that applies
    /// each batch received on the returned feed and hot-swaps the refreshed
    /// snapshot into `runtime`. Dropping the feed (or calling
    /// [`UpdateFeed::finish`]) stops the thread.
    pub fn spawn(self, runtime: Arc<ServingRuntime>) -> UpdateFeed {
        self.spawn_with_queue(runtime, DEFAULT_UPDATE_QUEUE_CAP)
    }

    /// [`spawn`](StreamingMaintainer::spawn) with an explicit bound on the
    /// pending-batch queue (see [`DEFAULT_UPDATE_QUEUE_CAP`]).
    pub fn spawn_with_queue(self, runtime: Arc<ServingRuntime>, queue_cap: usize) -> UpdateFeed {
        let (tx, rx) = mpsc::sync_channel::<Vec<EdgeUpdate>>(queue_cap.max(1));
        let handle = thread::Builder::new()
            .name("icde-maintain".to_string())
            .spawn(move || {
                let mut maintainer = self;
                while let Ok(batch) = rx.recv() {
                    maintainer.apply_batch(&batch);
                    // a failed publish means the runtime has already shut
                    // down: stop consuming instead of panicking, so finish()
                    // still returns the maintainer cleanly
                    if maintainer.publish_to(&runtime).is_err() {
                        break;
                    }
                }
                maintainer
            })
            .expect("failed to spawn maintenance thread");
        UpdateFeed {
            tx: Some(tx),
            handle: Some(handle),
        }
    }
}

/// Handle to a spawned maintenance thread (see [`StreamingMaintainer::spawn`]).
pub struct UpdateFeed {
    tx: Option<mpsc::SyncSender<Vec<EdgeUpdate>>>,
    handle: Option<thread::JoinHandle<StreamingMaintainer>>,
}

impl UpdateFeed {
    /// Enqueues one update batch, blocking while the queue is at capacity
    /// (backpressure against a producer that outruns the maintainer).
    /// Returns `false` if the maintenance thread has already stopped.
    pub fn push(&self, batch: Vec<EdgeUpdate>) -> bool {
        match &self.tx {
            Some(tx) => tx.send(batch).is_ok(),
            None => false,
        }
    }

    /// Closes the feed, waits for the maintenance thread to drain every
    /// queued batch, and returns the maintainer (with its final graph, index
    /// and counters).
    pub fn finish(mut self) -> StreamingMaintainer {
        drop(self.tx.take());
        self.handle
            .take()
            .expect("finish consumes the feed")
            .join()
            .expect("maintenance thread panicked")
    }
}

impl Drop for UpdateFeed {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::PrecomputeConfig;
    use crate::query::TopLQuery;
    use crate::serving::ServingConfig;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::{GraphBuilder, KeywordSet};

    fn setup(n: usize, seed: u64) -> (SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, n, seed)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g);
        (g, index)
    }

    /// Rebuilds the logical graph from scratch (fresh builder over the live
    /// edge table → dense CSR, no overlay) with the same keyword sets.
    fn rebuild_from_scratch(g: &SocialNetwork) -> SocialNetwork {
        let mut b = GraphBuilder::with_vertices(g.num_vertices());
        for v in g.vertices() {
            b.set_keywords(v, g.keyword_set(v).clone()).unwrap();
        }
        for (u, v, wf, wb) in g.edge_table_iter() {
            b.add_edge(u, v, wf, wb);
        }
        b.build().unwrap()
    }

    fn answer_bits(a: &crate::topl::TopLAnswer) -> Vec<(u32, u64, Vec<u32>)> {
        a.communities
            .iter()
            .map(|c| {
                (
                    c.center.0,
                    c.influential_score.to_bits(),
                    c.vertices.iter().map(|v| v.0).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn batched_stream_stays_exact_and_compacts() {
        let (g, index) = setup(150, 31);
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(0.02);

        // a deterministic mixed stream: remove every 7th edge, insert a few
        // fresh ones
        let removals: Vec<EdgeUpdate> = g
            .edges()
            .filter(|(e, _, _)| e.index() % 7 == 0)
            .take(6)
            .map(|(_, u, v)| EdgeUpdate::Remove { u, v })
            .collect();
        let mut inserts = Vec::new();
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.contains_edge(u, v) {
                    inserts.push(EdgeUpdate::Insert {
                        u,
                        v,
                        p_uv: 0.4,
                        p_vu: 0.35,
                    });
                    if inserts.len() == 6 {
                        break 'outer;
                    }
                }
            }
        }

        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        for batch in [removals, inserts] {
            maintainer.apply_batch(&batch);
            let scratch = rebuild_from_scratch(maintainer.graph());
            let scratch_index = IndexBuilder::new(PrecomputeConfig {
                parallel: false,
                ..Default::default()
            })
            .with_leaf_capacity(8)
            .build(&scratch);
            let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
                .run(&query)
                .unwrap();
            let reference = TopLProcessor::new(&scratch, &scratch_index)
                .run(&query)
                .unwrap();
            assert_eq!(answer_bits(&live), answer_bits(&reference));
        }
        let stats = maintainer.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.updates_applied(), 12);
        assert_eq!(stats.updates_skipped, 0);
        assert!(
            stats.compactions >= 1,
            "low threshold must trigger compaction"
        );
    }

    /// Persisting a pair with a pending overlay is only safe after
    /// [`StreamingMaintainer::compact_now`]: snapshot writers renumber edge
    /// ids past tombstone holes, and the supports must follow the remap.
    #[test]
    fn compact_now_realigns_supports_with_the_persisted_id_space() {
        let (g, index) = setup(150, 34);
        // huge threshold: batches never trigger compaction on their own
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(f64::INFINITY);
        let removals: Vec<EdgeUpdate> = g
            .edges()
            .filter(|(e, _, _)| e.index() % 5 == 0)
            .take(4)
            .map(|(_, u, v)| EdgeUpdate::Remove { u, v })
            .collect();
        maintainer.apply_batch(&removals);
        assert!(maintainer.graph().has_overlay());
        assert_eq!(maintainer.stats().compactions, 0);

        assert!(maintainer.compact_now());
        assert!(!maintainer.graph().has_overlay());
        assert_eq!(maintainer.stats().compactions, 1);
        // no-op on an empty overlay
        assert!(!maintainer.compact_now());
        assert_eq!(maintainer.stats().compactions, 1);

        // the compacted pair is bit-identical to a from-scratch rebuild in
        // the dense id space a snapshot writer would persist — including the
        // edge-indexed supports, which the pre-fix path left misaligned
        let scratch = rebuild_from_scratch(maintainer.graph());
        let scratch_index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&scratch);
        assert_eq!(
            maintainer.index().precomputed.edge_supports.as_slice(),
            scratch_index.precomputed.edge_supports.as_slice()
        );
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        let reference = TopLProcessor::new(&scratch, &scratch_index)
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&live), answer_bits(&reference));
    }

    /// Regression (issue 9 satellite): maintenance used to rebuild a full
    /// `SignatureTable::for_graph` — an O(n·words) allocation — on every
    /// refresh. The maintainer now owns a ball-cover-sized arena whose
    /// signature rows survive across batches: a second batch over the same
    /// region re-hashes nothing and allocates no new rows.
    #[test]
    fn recompute_arena_stays_warm_across_batches() {
        let (g, index) = setup(150, 35);
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(f64::INFINITY);
        assert_eq!(maintainer.arena().signature_rows_cached(), 0);

        let (_, u, v) = g.edges().next().unwrap();
        let cycle = [
            vec![EdgeUpdate::Remove { u, v }],
            vec![EdgeUpdate::Insert {
                u,
                v,
                p_uv: 0.4,
                p_vu: 0.35,
            }],
        ];
        // first cycle saturates the arena's ball-cover capacity
        for batch in &cycle {
            maintainer.apply_batch(batch);
        }
        let rows_warm = maintainer.arena().signature_rows_cached();
        let bytes_warm = maintainer.arena().resident_bytes();
        assert!(rows_warm > 0, "first cycle warms the arena");

        // the same balls again: every signature row is already cached, so the
        // arena neither re-hashes nor grows
        for batch in &cycle {
            maintainer.apply_batch(batch);
            assert_eq!(maintainer.arena().signature_rows_cached(), rows_warm);
            assert_eq!(maintainer.arena().resident_bytes(), bytes_warm);
        }

        // and the refreshed pair is still exact
        let scratch = rebuild_from_scratch(maintainer.graph());
        let scratch_index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&scratch);
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        let reference = TopLProcessor::new(&scratch, &scratch_index)
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&live), answer_bits(&reference));
    }

    #[test]
    fn invalid_updates_are_skipped_not_fatal() {
        let (g, index) = setup(60, 32);
        let (_, u, v) = g.edges().next().unwrap();
        let mut maintainer = StreamingMaintainer::new(g, index);
        maintainer.apply_batch(&[
            // duplicate insert
            EdgeUpdate::Insert {
                u,
                v,
                p_uv: 0.5,
                p_vu: 0.5,
            },
            // self loop
            EdgeUpdate::Insert {
                u,
                v: u,
                p_uv: 0.5,
                p_vu: 0.5,
            },
            // genuine removal
            EdgeUpdate::Remove { u, v },
            // double removal
            EdgeUpdate::Remove { u, v },
        ]);
        let stats = maintainer.stats();
        assert_eq!(stats.removes_applied, 1);
        assert_eq!(stats.inserts_applied, 0);
        assert_eq!(stats.updates_skipped, 3);
        assert!(!maintainer.graph().contains_edge(u, v));
    }

    #[test]
    fn maintenance_thread_publishes_refreshed_snapshots() {
        let (g, index) = setup(120, 33);
        let runtime = Arc::new(
            ServingRuntime::start(ServingConfig::with_workers(2), g.clone(), index.clone())
                .unwrap(),
        );
        let feed = StreamingMaintainer::new(g.clone(), index).spawn(Arc::clone(&runtime));

        let (_, u, v) = g.edges().next().unwrap();
        assert!(feed.push(vec![EdgeUpdate::Remove { u, v }]));
        let maintainer = feed.finish();
        assert_eq!(maintainer.stats().removes_applied, 1);

        let snapshot = runtime.current();
        assert_eq!(snapshot.epoch(), 2, "maintenance thread must hot-swap");
        assert!(!snapshot.graph.contains_edge(u, v));

        // the published snapshot answers exactly like the maintainer's pair
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 4);
        let served = runtime.submit(query.clone()).wait().unwrap();
        let direct = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&served.answer), answer_bits(&direct));
        assert_eq!(served.epoch, 2);
    }
}
