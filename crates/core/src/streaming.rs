//! D-TopL streaming maintenance: edge-update batches applied against a live
//! graph + index pair and republished through the serving runtime.
//!
//! The offline pipeline treats the social network as frozen; this module is
//! the *online update* half of the D-TopL loop. A [`StreamingMaintainer`]
//! owns the working graph + index pair and, per update batch:
//!
//! 1. applies each edge insert/remove as an **O(degree · log degree) delta
//!    overlay patch** ([`SocialNetwork::apply_edge_inserted`] /
//!    [`SocialNetwork::apply_edge_removed`]) — no CSR rebuild,
//! 2. patches the edge-indexed truss supports incrementally (only the
//!    triangles the edge opens or closes change), logging every touched
//!    support slot,
//! 3. recomputes the per-vertex aggregates of the **affected balls only**
//!    (`hop(u, r_max + slack) ∪ hop(v, r_max + slack)` per update) — fanned
//!    out over a pool of warm [`MaintenanceArena`]s via
//!    [`PrecomputedData::recompute_vertices_parallel`] once the deduplicated
//!    ball grows past [`PARALLEL_BATCH_MIN`],
//! 4. compacts the overlay back into a fresh CSR once it exceeds the
//!    configured fraction of the base edge count, applying the returned
//!    edge-id remap to the supports, and
//! 5. **patches** the index tree in place ([`CommunityIndex::patch_vertices`]):
//!    only the leaves holding recomputed vertices and their ancestor paths
//!    are re-merged, so the index refresh costs
//!    O(|ball| · leaf_capacity · depth) instead of the O(n log n) sort +
//!    full re-merge of a rebuild.
//!
//! # Patch vs. repack
//!
//! Patching keeps every vertex in the leaf the last full build placed it in.
//! The bounds stay *exact* — a leaf's re-merged aggregate is identical to
//! what a from-scratch re-merge of the same tree produces — but the tree's
//! *pruning quality* decays as updates drift vertices away from the
//! support/score order the builder packed them by. The maintainer therefore
//! counts recomputed vertices since the last full build and, once they
//! exceed [`DEFAULT_REPACK_THRESHOLD`] (configurable via
//! [`StreamingMaintainer::with_repack_threshold`]) as a fraction of `n`,
//! performs a **repack**: a full re-sorted rebuild that restores the packing
//! invariant and resets the drift counter.
//!
//! # Footprint-proportional publishing
//!
//! [`StreamingMaintainer::publish_to`] does not deep-copy the pair. The
//! graph's base CSR sections and the index's tree arrays are `Arc`-shared
//! (O(1) clone); the mutable flat tables are published through double-
//! buffered shadows that replay only the rows dirtied since the previous
//! publish. The snapshot is tagged with an incrementally-evolved state tag
//! instead of re-hashing the whole index, and a publish with nothing to
//! say (no applied updates, no compaction) is skipped entirely.
//!
//! [`StreamingMaintainer::spawn`] moves the maintainer onto a dedicated
//! maintenance thread that drains batches from a channel and hot-swaps each
//! refreshed snapshot into a [`ServingRuntime`], so queries keep draining on
//! the previous snapshot while the next one is prepared. The refreshed index
//! is *exact*: observationally identical to one rebuilt from scratch at the
//! same logical graph state.

use crate::error::CoreResult;
use crate::index::{CommunityIndex, IndexBuilder, IndexPlacement, IndexShadow};
use crate::maintenance::{affected_vertices_with, influence_slack_bound};
use crate::precompute::MaintenanceArena;
use crate::serving::{ServingRuntime, ServingSnapshot};
use icde_graph::graph::DEFAULT_COMPACT_THRESHOLD;
use icde_graph::snapshot::fnv1a_extend;
use icde_graph::{SocialNetwork, VertexId, Weight};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// One edge update in a D-TopL stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdate {
    /// Insert the edge `{u, v}` with directed activation probabilities
    /// `p_uv` (u → v) and `p_vu` (v → u).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Activation probability u → v.
        p_uv: Weight,
        /// Activation probability v → u.
        p_vu: Weight,
    },
    /// Remove the existing edge `{u, v}`.
    Remove {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
}

/// Counters and per-phase wall-clock accumulated by a
/// [`StreamingMaintainer`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintainerStats {
    /// Batches applied.
    pub batches: u64,
    /// Edge insertions applied.
    pub inserts_applied: u64,
    /// Edge removals applied.
    pub removes_applied: u64,
    /// Updates skipped (duplicate inserts, removals of missing edges, …).
    pub updates_skipped: u64,
    /// Vertices whose aggregates were recomputed (after deduplication).
    pub vertices_recomputed: u64,
    /// Ball-cover overlap: vertices discovered more than once within a
    /// batch's endpoint balls (raw visits minus deduplicated set size). A
    /// high ratio against `vertices_recomputed` means the batch's updates
    /// land in overlapping neighbourhoods and batching is paying off.
    pub ball_overlap: u64,
    /// Overlay compactions folded back into the CSR base.
    pub compactions: u64,
    /// Index refreshes served by the in-place patch path.
    pub index_patches: u64,
    /// Index refreshes served by a full re-sorted rebuild (repack).
    pub repacks: u64,
    /// Publishes skipped because nothing changed since the last one.
    pub publishes_skipped: u64,
    /// Seconds spent applying overlay edits and patching edge supports.
    pub support_patch_secs: f64,
    /// Seconds spent discovering affected balls and recomputing their
    /// per-vertex aggregates and seed bounds.
    pub ball_recompute_secs: f64,
    /// Seconds spent refreshing the index tree (patch or repack).
    pub index_patch_secs: f64,
    /// Seconds spent building structurally-shared snapshots for publishing.
    pub publish_secs: f64,
}

impl MaintainerStats {
    /// Total updates applied (inserts + removes).
    pub fn updates_applied(&self) -> u64 {
        self.inserts_applied + self.removes_applied
    }
}

/// The pre-PR-10 name of [`MaintainerStats`].
pub type StreamStats = MaintainerStats;

/// Default bound on a spawned maintenance thread's pending-batch queue:
/// [`UpdateFeed::push`] blocks once this many batches are queued, so a
/// producer that outruns the maintainer is backpressured instead of growing
/// the queue without limit.
pub const DEFAULT_UPDATE_QUEUE_CAP: usize = 64;

/// Deduplicated affected-ball size at which a batch refresh fans out over
/// the arena pool (when the precompute config grants more than one worker).
/// Below this the sequential single-arena path is both faster (no spawn
/// overhead) and exactly reproducible arena-for-arena.
pub const PARALLEL_BATCH_MIN: usize = 64;

/// Default fraction of `n` that recomputed vertices may accumulate to since
/// the last full build before the next refresh repacks the tree (see the
/// module docs on patch vs. repack).
pub const DEFAULT_REPACK_THRESHOLD: f64 = 0.25;

/// Largest directed activation probability over the live edges (O(m) scan).
fn scan_p_max(graph: &SocialNetwork) -> f64 {
    let mut p_max = 0.0f64;
    for (e, a, b) in graph.edges() {
        p_max = p_max
            .max(graph.directed_weight(e, a))
            .max(graph.directed_weight(e, b));
    }
    p_max
}

/// Owns a mutable graph + index working pair and keeps both exact under a
/// stream of edge updates (see the module docs for the per-batch pipeline).
pub struct StreamingMaintainer {
    graph: SocialNetwork,
    /// Always `Some` between batches; taken during a batch because a repack
    /// ([`IndexBuilder::build_from_precomputed`]) consumes the data.
    index: Option<CommunityIndex>,
    compact_threshold: f64,
    repack_threshold: f64,
    /// Monotone upper bound on the largest directed edge weight of the
    /// working graph, maintained incrementally so small batches avoid an
    /// O(m) rescan: folded up on inserts, refreshed exactly on compaction.
    /// Removals may leave it stale-high, which only widens the refresh
    /// radius — still correct, just conservative.
    p_max: f64,
    /// Pool of ball-cover-sized recompute scratches reused across batches
    /// (paged workspaces + sparse signature rows stay warm — keywords never
    /// change under edge updates). Small batches use only `arenas[0]`; large
    /// batches partition the affected set across the whole pool, one scoped
    /// worker thread per arena.
    arenas: Vec<MaintenanceArena>,
    /// Vertex → leaf placement of the current tree, kept stable by the patch
    /// path and re-derived on repack.
    placement: IndexPlacement,
    /// Double-buffered publish shadow: tracks which rows changed since each
    /// buffer's last publish so [`Self::publish_to`] copies only those.
    shadow: IndexShadow,
    /// Incrementally-evolved content tag for published snapshots (replaces
    /// the O(n + m) `content_fingerprint` re-hash per epoch).
    state_tag: u64,
    /// Whether anything changed since the last publish.
    dirty_since_publish: bool,
    /// Recomputed vertices accumulated since the last full build; drives the
    /// repack decision against `repack_threshold · n`.
    dirty_since_repack: u64,
    /// One-shot override: the next refresh repacks regardless of drift.
    force_repack: bool,
    stats: MaintainerStats,
    // Reusable per-batch buffers (allocation-free steady state).
    affected: Vec<VertexId>,
    touched_edges: Vec<u32>,
    patched_nodes: Vec<u32>,
    dirty_vertices: Vec<u32>,
}

impl StreamingMaintainer {
    /// Wraps a graph and the index built over it. The pair is typically the
    /// same one published to a [`ServingRuntime`] as its initial snapshot.
    /// Converts both to `Arc`-shared section storage so every subsequent
    /// publish clones the untouched bulk in O(1).
    pub fn new(mut graph: SocialNetwork, mut index: CommunityIndex) -> Self {
        let p_max = scan_p_max(&graph);
        graph.share_sections();
        index.share_tree_sections();
        let placement = index.derive_placement();
        let mut shadow = IndexShadow::new(&index);
        // pay the two full-buffer syncs once here, so even the first two
        // publishes only replay dirty rows instead of copying O(n) arrays
        shadow.prime(&index);
        // the one full hash: every later publish evolves this tag
        // incrementally instead of re-hashing O(n + m) content
        let state_tag = index.content_fingerprint();
        StreamingMaintainer {
            graph,
            index: Some(index),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            repack_threshold: DEFAULT_REPACK_THRESHOLD,
            p_max,
            arenas: vec![MaintenanceArena::new()],
            placement,
            shadow,
            state_tag,
            dirty_since_publish: true,
            dirty_since_repack: 0,
            force_repack: false,
            stats: MaintainerStats::default(),
            affected: Vec::new(),
            touched_edges: Vec::new(),
            patched_nodes: Vec::new(),
            dirty_vertices: Vec::new(),
        }
    }

    /// Sets the overlay fraction above which a batch triggers compaction
    /// (default [`DEFAULT_COMPACT_THRESHOLD`]).
    pub fn with_compact_threshold(mut self, threshold: f64) -> Self {
        self.compact_threshold = threshold;
        self
    }

    /// Sets the fraction of `n` that recomputed vertices may accumulate to
    /// before a refresh repacks the tree instead of patching it (default
    /// [`DEFAULT_REPACK_THRESHOLD`]). `0.0` repacks on every batch (the
    /// pre-PR-10 behaviour); `f64::INFINITY` never repacks.
    pub fn with_repack_threshold(mut self, threshold: f64) -> Self {
        self.repack_threshold = threshold;
        self
    }

    /// The current working graph.
    pub fn graph(&self) -> &SocialNetwork {
        &self.graph
    }

    /// The current working index.
    pub fn index(&self) -> &CommunityIndex {
        self.index
            .as_ref()
            .expect("maintainer always holds an index")
    }

    /// The vertex → leaf placement of the current tree (stable under the
    /// patch path, re-derived on repack).
    pub fn placement(&self) -> &IndexPlacement {
        &self.placement
    }

    /// The lifetime counters.
    pub fn stats(&self) -> MaintainerStats {
        self.stats
    }

    /// The primary recompute scratch arena reused across batches (telemetry:
    /// resident bytes and warm signature rows). Large batches spread across
    /// an internal pool; this is the arena small batches run on.
    pub fn arena(&self) -> &MaintenanceArena {
        &self.arenas[0]
    }

    /// Applies one batch of updates and refreshes the index; returns the
    /// number of vertices whose aggregates were recomputed. Invalid updates
    /// (duplicate insert, removal of a missing edge, unknown vertex, …) are
    /// skipped and counted, so a noisy stream cannot wedge the maintainer.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> usize {
        let mut index = self.index.take().expect("maintainer always holds an index");
        let r_max = index.precomputed.config.r_max;

        // The refresh radius bound must hold on every intermediate graph of
        // the batch, so fold the weights of pending insertions into the
        // running p_max bound before any of them is applied.
        let theta_min = index
            .precomputed
            .config
            .thresholds
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        for update in updates {
            if let EdgeUpdate::Insert { p_uv, p_vu, .. } = *update {
                self.p_max = self.p_max.max(p_uv).max(p_vu);
            }
        }
        let slack = influence_slack_bound(theta_min, self.p_max).unwrap_or(u32::MAX / 2);

        self.affected.clear();
        self.touched_edges.clear();
        let applied_before = self.stats.updates_applied();
        for &update in updates {
            match update {
                EdgeUpdate::Insert { u, v, p_uv, p_vu } => {
                    let t = Instant::now();
                    match self.graph.apply_edge_inserted(u, v, p_uv, p_vu) {
                        Ok(e) => {
                            index.precomputed.patch_supports_after_insertion_logged(
                                &self.graph,
                                u,
                                v,
                                e,
                                &mut self.touched_edges,
                            );
                            self.stats.support_patch_secs += t.elapsed().as_secs_f64();
                            let t = Instant::now();
                            affected_vertices_with(
                                &mut self.arenas[0],
                                &self.graph,
                                u,
                                v,
                                r_max,
                                slack,
                                &mut self.affected,
                            );
                            self.stats.ball_recompute_secs += t.elapsed().as_secs_f64();
                            self.state_tag = tag_insert(self.state_tag, u, v, p_uv, p_vu);
                            self.stats.inserts_applied += 1;
                        }
                        Err(_) => self.stats.updates_skipped += 1,
                    }
                }
                EdgeUpdate::Remove { u, v } => {
                    // measure the ball while the edge still exists: it may be
                    // a bridge, and the post-deletion ball would then no
                    // longer reach the far side
                    let t = Instant::now();
                    let mark = self.affected.len();
                    affected_vertices_with(
                        &mut self.arenas[0],
                        &self.graph,
                        u,
                        v,
                        r_max,
                        slack,
                        &mut self.affected,
                    );
                    self.stats.ball_recompute_secs += t.elapsed().as_secs_f64();
                    let t = Instant::now();
                    match self.graph.apply_edge_removed(u, v) {
                        Ok(e) => {
                            index.precomputed.patch_supports_after_removal_logged(
                                &self.graph,
                                u,
                                v,
                                e,
                                &mut self.touched_edges,
                            );
                            self.stats.support_patch_secs += t.elapsed().as_secs_f64();
                            self.state_tag = tag_remove(self.state_tag, u, v);
                            self.stats.removes_applied += 1;
                        }
                        Err(_) => {
                            // discard the speculative ball of a skipped update
                            self.affected.truncate(mark);
                            self.stats.updates_skipped += 1;
                        }
                    }
                }
            }
        }
        let applied = self.stats.updates_applied() > applied_before;

        let mut compacted = false;
        if let Some(remap) = self.graph.maybe_compact(self.compact_threshold) {
            index.precomputed.apply_edge_id_remap(&remap);
            self.p_max = scan_p_max(&self.graph);
            // compaction rebuilt the CSR base: re-share the fresh sections
            // and invalidate the support shadow (the edge-id space moved)
            self.graph.share_sections();
            self.shadow.mark_all_edges();
            self.state_tag = fnv1a_extend(self.state_tag, b"compact");
            self.stats.compactions += 1;
            compacted = true;
        }

        // Nothing applied and nothing compacted: the pair is untouched, so
        // skip the recompute, the index refresh and the publish dirtying
        // entirely — a batch of duplicates costs only its validation.
        if !applied && !compacted {
            self.stats.batches += 1;
            self.index = Some(index);
            return 0;
        }

        let t = Instant::now();
        let raw_visits = self.affected.len();
        self.affected.sort_unstable();
        self.affected.dedup();
        self.stats.ball_overlap += (raw_visits - self.affected.len()) as u64;
        // keywords are immutable under edge updates (and compaction remaps
        // edge ids, not vertices), so the arenas' cached signature rows stay
        // valid across the maintainer's whole lifetime
        let workers = index
            .precomputed
            .config
            .worker_count(self.graph.num_vertices());
        if self.affected.len() >= PARALLEL_BATCH_MIN && workers > 1 {
            while self.arenas.len() < workers {
                self.arenas.push(MaintenanceArena::new());
            }
            index.precomputed.recompute_vertices_parallel(
                &self.graph,
                &self.affected,
                &mut self.arenas[..workers],
            );
        } else {
            index.precomputed.recompute_vertices_with(
                &self.graph,
                &self.affected,
                &mut self.arenas[0],
            );
        }
        self.stats.ball_recompute_secs += t.elapsed().as_secs_f64();
        self.stats.vertices_recomputed += self.affected.len() as u64;
        self.stats.batches += 1;

        let t = Instant::now();
        self.patched_nodes.clear();
        self.dirty_since_repack += self.affected.len() as u64;
        let repack_due = self.force_repack
            || self.dirty_since_repack as f64
                >= self.repack_threshold * self.graph.num_vertices() as f64;
        if repack_due {
            index = self.repack(index);
        } else {
            index.patch_vertices(&self.affected, &mut self.placement, &mut self.patched_nodes);
            self.stats.index_patches += 1;
            // publish dirty tracking: recomputed vertex rows, touched
            // support slots (stale pre-compaction ids are clamped away by
            // the shadow when a compaction invalidated them above), and the
            // re-merged tree nodes
            self.dirty_vertices.clear();
            self.dirty_vertices
                .extend(self.affected.iter().map(|v| v.0));
            self.shadow.mark_vertices(&self.dirty_vertices);
            self.shadow.mark_edges(&self.touched_edges);
            self.shadow.mark_nodes(&self.patched_nodes);
        }
        self.stats.index_patch_secs += t.elapsed().as_secs_f64();

        self.dirty_since_publish = true;
        self.index = Some(index);
        self.affected.len()
    }

    /// Full re-sorted rebuild over the current precomputed data: restores
    /// the builder's support/score packing order, re-derives the placement
    /// and invalidates the whole publish shadow.
    fn repack(&mut self, index: CommunityIndex) -> CommunityIndex {
        let fanout = index.fanout();
        let leaf_capacity = index.leaf_capacity();
        let data = index.precomputed;
        let mut rebuilt = IndexBuilder::new(data.config.clone())
            .with_fanout(fanout)
            .with_leaf_capacity(leaf_capacity)
            .build_from_precomputed(&self.graph, data);
        rebuilt.share_tree_sections();
        self.placement = rebuilt.derive_placement();
        self.shadow.mark_all();
        self.state_tag = fnv1a_extend(self.state_tag, b"repack");
        self.stats.repacks += 1;
        self.dirty_since_repack = 0;
        self.force_repack = false;
        rebuilt
    }

    /// Forces a repack on the next refresh regardless of accumulated drift
    /// (one-shot; overrides even an infinite [`Self::with_repack_threshold`]).
    pub fn force_repack_next(&mut self) {
        self.force_repack = true;
    }

    /// Folds any pending overlay back into the CSR base and applies the
    /// resulting edge-id remap to the precomputed supports. Snapshot writers
    /// serialize the *live* edge table — implicitly renumbering edge ids
    /// past tombstone holes — so anything persisting the maintainer's
    /// graph + index pair must call this first, or the saved supports would
    /// stay keyed by the stale pre-compaction id space and silently
    /// misalign after a reload.
    ///
    /// Compaction renumbers edge ids only: no per-vertex aggregate, seed
    /// bound or tree node changes, so (unlike the pre-PR-10 path) the index
    /// is *not* rebuilt — a rebuild over the identical data would produce
    /// the identical tree. Returns `true` when a compaction actually ran
    /// (no-op on an empty overlay).
    pub fn compact_now(&mut self) -> bool {
        if !self.graph.has_overlay() {
            return false;
        }
        let remap = self.graph.compact();
        self.index
            .as_mut()
            .expect("maintainer always holds an index")
            .precomputed
            .apply_edge_id_remap(&remap);
        self.p_max = scan_p_max(&self.graph);
        self.graph.share_sections();
        self.shadow.mark_all_edges();
        self.state_tag = fnv1a_extend(self.state_tag, b"compact");
        self.stats.compactions += 1;
        self.dirty_since_publish = true;
        true
    }

    /// Publishes the current working pair to a serving runtime as a fresh
    /// snapshot. The clone is structurally shared: base CSR sections, tree
    /// arrays and every table row untouched since the previous publish are
    /// `Arc`-aliased, only dirty rows are copied, and the snapshot carries
    /// the incrementally-evolved state tag instead of a fresh O(n + m)
    /// content hash. When nothing changed since the last publish, the
    /// runtime's current snapshot is returned as-is (no epoch bump).
    pub fn publish_to(&mut self, runtime: &ServingRuntime) -> CoreResult<Arc<ServingSnapshot>> {
        if !self.dirty_since_publish {
            self.stats.publishes_skipped += 1;
            return Ok(runtime.current());
        }
        let t = Instant::now();
        let index = self
            .index
            .as_ref()
            .expect("maintainer always holds an index");
        let shared_index = self.shadow.publish(index);
        let snapshot =
            runtime.publish_with_fingerprint(self.graph.clone(), shared_index, self.state_tag)?;
        self.dirty_since_publish = false;
        self.stats.publish_secs += t.elapsed().as_secs_f64();
        Ok(snapshot)
    }

    /// Moves the maintainer onto a dedicated maintenance thread that applies
    /// each batch received on the returned feed and hot-swaps the refreshed
    /// snapshot into `runtime`. Dropping the feed (or calling
    /// [`UpdateFeed::finish`]) stops the thread.
    pub fn spawn(self, runtime: Arc<ServingRuntime>) -> UpdateFeed {
        self.spawn_with_queue(runtime, DEFAULT_UPDATE_QUEUE_CAP)
    }

    /// [`spawn`](StreamingMaintainer::spawn) with an explicit bound on the
    /// pending-batch queue (see [`DEFAULT_UPDATE_QUEUE_CAP`]).
    pub fn spawn_with_queue(self, runtime: Arc<ServingRuntime>, queue_cap: usize) -> UpdateFeed {
        let (tx, rx) = mpsc::sync_channel::<Vec<EdgeUpdate>>(queue_cap.max(1));
        let handle = thread::Builder::new()
            .name("icde-maintain".to_string())
            .spawn(move || {
                let mut maintainer = self;
                while let Ok(batch) = rx.recv() {
                    maintainer.apply_batch(&batch);
                    // a failed publish means the runtime has already shut
                    // down: stop consuming instead of panicking, so finish()
                    // still returns the maintainer cleanly
                    if maintainer.publish_to(&runtime).is_err() {
                        break;
                    }
                }
                maintainer
            })
            .expect("failed to spawn maintenance thread");
        UpdateFeed {
            tx: Some(tx),
            handle: Some(handle),
        }
    }
}

/// Folds one applied insertion into the running state tag.
fn tag_insert(tag: u64, u: VertexId, v: VertexId, p_uv: f64, p_vu: f64) -> u64 {
    let mut t = fnv1a_extend(tag, &[1u8]);
    t = fnv1a_extend(t, &u.0.to_le_bytes());
    t = fnv1a_extend(t, &v.0.to_le_bytes());
    t = fnv1a_extend(t, &p_uv.to_bits().to_le_bytes());
    fnv1a_extend(t, &p_vu.to_bits().to_le_bytes())
}

/// Folds one applied removal into the running state tag.
fn tag_remove(tag: u64, u: VertexId, v: VertexId) -> u64 {
    let mut t = fnv1a_extend(tag, &[2u8]);
    t = fnv1a_extend(t, &u.0.to_le_bytes());
    fnv1a_extend(t, &v.0.to_le_bytes())
}

/// Handle to a spawned maintenance thread (see [`StreamingMaintainer::spawn`]).
pub struct UpdateFeed {
    tx: Option<mpsc::SyncSender<Vec<EdgeUpdate>>>,
    handle: Option<thread::JoinHandle<StreamingMaintainer>>,
}

impl UpdateFeed {
    /// Enqueues one update batch, blocking while the queue is at capacity
    /// (backpressure against a producer that outruns the maintainer).
    /// Returns `false` if the maintenance thread has already stopped.
    pub fn push(&self, batch: Vec<EdgeUpdate>) -> bool {
        match &self.tx {
            Some(tx) => tx.send(batch).is_ok(),
            None => false,
        }
    }

    /// Closes the feed, waits for the maintenance thread to drain every
    /// queued batch, and returns the maintainer (with its final graph, index
    /// and counters).
    pub fn finish(mut self) -> StreamingMaintainer {
        drop(self.tx.take());
        self.handle
            .take()
            .expect("finish consumes the feed")
            .join()
            .expect("maintenance thread panicked")
    }
}

impl Drop for UpdateFeed {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::PrecomputeConfig;
    use crate::query::TopLQuery;
    use crate::serving::ServingConfig;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::{GraphBuilder, KeywordSet};

    fn setup(n: usize, seed: u64) -> (SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, n, seed)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g);
        (g, index)
    }

    /// Rebuilds the logical graph from scratch (fresh builder over the live
    /// edge table → dense CSR, no overlay) with the same keyword sets.
    fn rebuild_from_scratch(g: &SocialNetwork) -> SocialNetwork {
        let mut b = GraphBuilder::with_vertices(g.num_vertices());
        for v in g.vertices() {
            b.set_keywords(v, g.keyword_set(v).clone()).unwrap();
        }
        for (u, v, wf, wb) in g.edge_table_iter() {
            b.add_edge(u, v, wf, wb);
        }
        b.build().unwrap()
    }

    fn answer_bits(a: &crate::topl::TopLAnswer) -> Vec<(u32, u64, Vec<u32>)> {
        a.communities
            .iter()
            .map(|c| {
                (
                    c.center.0,
                    c.influential_score.to_bits(),
                    c.vertices.iter().map(|v| v.0).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn batched_stream_stays_exact_and_compacts() {
        let (g, index) = setup(150, 31);
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(0.02);

        // a deterministic mixed stream: remove every 7th edge, insert a few
        // fresh ones
        let removals: Vec<EdgeUpdate> = g
            .edges()
            .filter(|(e, _, _)| e.index() % 7 == 0)
            .take(6)
            .map(|(_, u, v)| EdgeUpdate::Remove { u, v })
            .collect();
        let mut inserts = Vec::new();
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.contains_edge(u, v) {
                    inserts.push(EdgeUpdate::Insert {
                        u,
                        v,
                        p_uv: 0.4,
                        p_vu: 0.35,
                    });
                    if inserts.len() == 6 {
                        break 'outer;
                    }
                }
            }
        }

        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        for batch in [removals, inserts] {
            maintainer.apply_batch(&batch);
            let scratch = rebuild_from_scratch(maintainer.graph());
            let scratch_index = IndexBuilder::new(PrecomputeConfig {
                parallel: false,
                ..Default::default()
            })
            .with_leaf_capacity(8)
            .build(&scratch);
            let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
                .run(&query)
                .unwrap();
            let reference = TopLProcessor::new(&scratch, &scratch_index)
                .run(&query)
                .unwrap();
            assert_eq!(answer_bits(&live), answer_bits(&reference));
        }
        let stats = maintainer.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.updates_applied(), 12);
        assert_eq!(stats.updates_skipped, 0);
        assert!(
            stats.compactions >= 1,
            "low threshold must trigger compaction"
        );
    }

    /// The patch path (repack disabled) must stay exact too: answers after
    /// in-place leaf/ancestor re-merges match a from-scratch rebuild at
    /// every intermediate state, and the phase breakdown actually ticks.
    #[test]
    fn patched_index_stays_exact_without_repacks() {
        let (g, index) = setup(150, 36);
        let mut maintainer = StreamingMaintainer::new(g.clone(), index)
            .with_compact_threshold(f64::INFINITY)
            .with_repack_threshold(f64::INFINITY);

        let removals: Vec<EdgeUpdate> = g
            .edges()
            .filter(|(e, _, _)| e.index() % 9 == 0)
            .take(5)
            .map(|(_, u, v)| EdgeUpdate::Remove { u, v })
            .collect();
        let reinserts: Vec<EdgeUpdate> = removals
            .iter()
            .map(|r| match *r {
                EdgeUpdate::Remove { u, v } => EdgeUpdate::Insert {
                    u,
                    v,
                    p_uv: 0.3,
                    p_vu: 0.25,
                },
                _ => unreachable!(),
            })
            .collect();

        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        for batch in [removals, reinserts] {
            maintainer.apply_batch(&batch);
            let scratch = rebuild_from_scratch(maintainer.graph());
            let scratch_index = IndexBuilder::new(PrecomputeConfig {
                parallel: false,
                ..Default::default()
            })
            .with_leaf_capacity(8)
            .build(&scratch);
            let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
                .run(&query)
                .unwrap();
            let reference = TopLProcessor::new(&scratch, &scratch_index)
                .run(&query)
                .unwrap();
            assert_eq!(answer_bits(&live), answer_bits(&reference));
        }
        let stats = maintainer.stats();
        assert_eq!(stats.repacks, 0, "repack disabled: every refresh patches");
        assert_eq!(stats.index_patches, 2);
        assert!(stats.vertices_recomputed > 0);
        assert!(stats.support_patch_secs >= 0.0);
        assert!(stats.ball_recompute_secs > 0.0);
        assert!(stats.index_patch_secs > 0.0);
    }

    /// A batch where every update is invalid leaves the pair untouched, so
    /// the refresh and the next publish are skipped outright.
    #[test]
    fn no_op_batch_skips_refresh_and_publish() {
        let (g, index) = setup(80, 37);
        let runtime = Arc::new(
            ServingRuntime::start(ServingConfig::with_workers(1), g.clone(), index.clone())
                .unwrap(),
        );
        let mut maintainer = StreamingMaintainer::new(g.clone(), index);
        let first = maintainer.publish_to(&runtime).unwrap();
        assert_eq!(first.epoch(), 2);

        let (_, u, v) = g.edges().next().unwrap();
        let recomputed = maintainer.apply_batch(&[
            // both invalid: a duplicate insert and a removal of a missing edge
            EdgeUpdate::Insert {
                u,
                v,
                p_uv: 0.5,
                p_vu: 0.5,
            },
            EdgeUpdate::Remove {
                u: VertexId(0),
                v: VertexId(0),
            },
        ]);
        assert_eq!(recomputed, 0);
        let stats = maintainer.stats();
        assert_eq!(stats.updates_skipped, 2);
        assert_eq!(stats.vertices_recomputed, 0);
        assert_eq!(stats.index_patches + stats.repacks, 0);

        // nothing changed: publish returns the current snapshot, no epoch bump
        let again = maintainer.publish_to(&runtime).unwrap();
        assert_eq!(again.epoch(), first.epoch());
        assert_eq!(maintainer.stats().publishes_skipped, 1);
        assert_eq!(runtime.current().epoch(), first.epoch());
    }

    /// Published snapshots structurally share the maintainer's working pair:
    /// the publish path must still produce answers identical to querying the
    /// maintainer's own graph + index directly, across patches, repacks and
    /// compactions.
    #[test]
    fn structurally_shared_publish_matches_working_pair() {
        let (g, index) = setup(150, 38);
        let runtime = Arc::new(
            ServingRuntime::start(ServingConfig::with_workers(1), g.clone(), index.clone())
                .unwrap(),
        );
        // repacks only when forced below, so both refresh paths are covered
        let mut maintainer = StreamingMaintainer::new(g.clone(), index)
            .with_compact_threshold(0.02)
            .with_repack_threshold(f64::INFINITY);

        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let mut edges = g.edges();
        for round in 0..3 {
            let (_, u, v) = edges.next().unwrap();
            if round == 2 {
                maintainer.force_repack_next();
            }
            maintainer.apply_batch(&[EdgeUpdate::Remove { u, v }]);
            let snapshot = maintainer.publish_to(&runtime).unwrap();
            let published = TopLProcessor::new(&snapshot.graph, &snapshot.index)
                .run(&query)
                .unwrap();
            let direct = TopLProcessor::new(maintainer.graph(), maintainer.index())
                .run(&query)
                .unwrap();
            assert_eq!(answer_bits(&published), answer_bits(&direct));
        }
        let stats = maintainer.stats();
        assert!(stats.repacks >= 1, "forced repack must run");
        assert!(stats.index_patches >= 1, "earlier rounds patch");

        // distinct content must carry distinct snapshot tags (cache keying)
        let early = runtime.current().fingerprint();
        let (_, u, v) = edges.next().unwrap();
        maintainer.apply_batch(&[EdgeUpdate::Remove { u, v }]);
        let late = maintainer.publish_to(&runtime).unwrap();
        assert_ne!(late.fingerprint(), early);
    }

    /// Persisting a pair with a pending overlay is only safe after
    /// [`StreamingMaintainer::compact_now`]: snapshot writers renumber edge
    /// ids past tombstone holes, and the supports must follow the remap.
    #[test]
    fn compact_now_realigns_supports_with_the_persisted_id_space() {
        let (g, index) = setup(150, 34);
        // huge threshold: batches never trigger compaction on their own
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(f64::INFINITY);
        let removals: Vec<EdgeUpdate> = g
            .edges()
            .filter(|(e, _, _)| e.index() % 5 == 0)
            .take(4)
            .map(|(_, u, v)| EdgeUpdate::Remove { u, v })
            .collect();
        maintainer.apply_batch(&removals);
        assert!(maintainer.graph().has_overlay());
        assert_eq!(maintainer.stats().compactions, 0);

        assert!(maintainer.compact_now());
        assert!(!maintainer.graph().has_overlay());
        assert_eq!(maintainer.stats().compactions, 1);
        // no-op on an empty overlay
        assert!(!maintainer.compact_now());
        assert_eq!(maintainer.stats().compactions, 1);

        // the compacted pair is bit-identical to a from-scratch rebuild in
        // the dense id space a snapshot writer would persist — including the
        // edge-indexed supports, which the pre-fix path left misaligned
        let scratch = rebuild_from_scratch(maintainer.graph());
        let scratch_index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&scratch);
        assert_eq!(
            maintainer.index().precomputed.edge_supports.as_slice(),
            scratch_index.precomputed.edge_supports.as_slice()
        );
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        let reference = TopLProcessor::new(&scratch, &scratch_index)
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&live), answer_bits(&reference));
    }

    /// Regression (issue 9 satellite): maintenance used to rebuild a full
    /// `SignatureTable::for_graph` — an O(n·words) allocation — on every
    /// refresh. The maintainer now owns a ball-cover-sized arena whose
    /// signature rows survive across batches: a second batch over the same
    /// region re-hashes nothing and allocates no new rows.
    #[test]
    fn recompute_arena_stays_warm_across_batches() {
        let (g, index) = setup(150, 35);
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), index).with_compact_threshold(f64::INFINITY);
        assert_eq!(maintainer.arena().signature_rows_cached(), 0);

        let (_, u, v) = g.edges().next().unwrap();
        let cycle = [
            vec![EdgeUpdate::Remove { u, v }],
            vec![EdgeUpdate::Insert {
                u,
                v,
                p_uv: 0.4,
                p_vu: 0.35,
            }],
        ];
        // first cycle saturates the arena's ball-cover capacity
        for batch in &cycle {
            maintainer.apply_batch(batch);
        }
        let rows_warm = maintainer.arena().signature_rows_cached();
        let bytes_warm = maintainer.arena().resident_bytes();
        assert!(rows_warm > 0, "first cycle warms the arena");

        // the same balls again: every signature row is already cached, so the
        // arena neither re-hashes nor grows
        for batch in &cycle {
            maintainer.apply_batch(batch);
            assert_eq!(maintainer.arena().signature_rows_cached(), rows_warm);
            assert_eq!(maintainer.arena().resident_bytes(), bytes_warm);
        }

        // and the refreshed pair is still exact
        let scratch = rebuild_from_scratch(maintainer.graph());
        let scratch_index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&scratch);
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let live = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        let reference = TopLProcessor::new(&scratch, &scratch_index)
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&live), answer_bits(&reference));
    }

    #[test]
    fn invalid_updates_are_skipped_not_fatal() {
        let (g, index) = setup(60, 32);
        let (_, u, v) = g.edges().next().unwrap();
        let mut maintainer = StreamingMaintainer::new(g, index);
        maintainer.apply_batch(&[
            // duplicate insert
            EdgeUpdate::Insert {
                u,
                v,
                p_uv: 0.5,
                p_vu: 0.5,
            },
            // self loop
            EdgeUpdate::Insert {
                u,
                v: u,
                p_uv: 0.5,
                p_vu: 0.5,
            },
            // genuine removal
            EdgeUpdate::Remove { u, v },
            // double removal
            EdgeUpdate::Remove { u, v },
        ]);
        let stats = maintainer.stats();
        assert_eq!(stats.removes_applied, 1);
        assert_eq!(stats.inserts_applied, 0);
        assert_eq!(stats.updates_skipped, 3);
        assert!(!maintainer.graph().contains_edge(u, v));
    }

    #[test]
    fn maintenance_thread_publishes_refreshed_snapshots() {
        let (g, index) = setup(120, 33);
        let runtime = Arc::new(
            ServingRuntime::start(ServingConfig::with_workers(2), g.clone(), index.clone())
                .unwrap(),
        );
        let feed = StreamingMaintainer::new(g.clone(), index).spawn(Arc::clone(&runtime));

        let (_, u, v) = g.edges().next().unwrap();
        assert!(feed.push(vec![EdgeUpdate::Remove { u, v }]));
        let maintainer = feed.finish();
        assert_eq!(maintainer.stats().removes_applied, 1);

        let snapshot = runtime.current();
        assert_eq!(snapshot.epoch(), 2, "maintenance thread must hot-swap");
        assert!(!snapshot.graph.contains_edge(u, v));

        // the published snapshot answers exactly like the maintainer's pair
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 4);
        let served = runtime.submit(query.clone()).wait().unwrap();
        let direct = TopLProcessor::new(maintainer.graph(), maintainer.index())
            .run(&query)
            .unwrap();
        assert_eq!(answer_bits(&served.answer), answer_bits(&direct));
        assert_eq!(served.epoch, 2);
    }
}
