//! Error types for query validation and index usage.

use std::fmt;

/// Errors raised while validating queries or matching a query against an
/// index.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The query keyword set is empty; every seed-community member must share
    /// a keyword with it, so an empty set can never match.
    EmptyQueryKeywords,
    /// `L` (or the candidate multiplier `n`) must be at least 1.
    InvalidResultSize(usize),
    /// The truss support parameter must be at least 2.
    InvalidSupport(u32),
    /// The radius must be at least 1.
    InvalidRadius(u32),
    /// The influence threshold must lie in `[0, 1)`.
    InvalidTheta(f64),
    /// The query radius exceeds the `r_max` the index was pre-computed with,
    /// so offline bounds would not be valid upper bounds.
    RadiusExceedsIndex {
        /// Radius requested by the query.
        requested: u32,
        /// Maximum radius supported by the index.
        r_max: u32,
    },
    /// An index could not be serialised or deserialised (I/O failure,
    /// malformed input, or an unsupported on-disk format version).
    Serialization(String),
    /// The index was built over a graph with a different number of vertices.
    IndexGraphMismatch {
        /// Vertices in the graph passed to the processor.
        graph_vertices: usize,
        /// Vertices the index was built over.
        index_vertices: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyQueryKeywords => write!(f, "query keyword set must not be empty"),
            CoreError::InvalidResultSize(l) => write!(f, "result size must be >= 1, got {l}"),
            CoreError::InvalidSupport(k) => write!(f, "truss support k must be >= 2, got {k}"),
            CoreError::InvalidRadius(r) => write!(f, "radius must be >= 1, got {r}"),
            CoreError::InvalidTheta(t) => {
                write!(f, "influence threshold must be in [0, 1), got {t}")
            }
            CoreError::Serialization(msg) => write!(f, "index serialisation error: {msg}"),
            CoreError::RadiusExceedsIndex { requested, r_max } => write!(
                f,
                "query radius {requested} exceeds the index's maximum pre-computed radius {r_max}"
            ),
            CoreError::IndexGraphMismatch {
                graph_vertices,
                index_vertices,
            } => write!(
                f,
                "index was built over {index_vertices} vertices but the graph has {graph_vertices}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::EmptyQueryKeywords
            .to_string()
            .contains("keyword"));
        assert!(CoreError::InvalidResultSize(0).to_string().contains('0'));
        assert!(CoreError::InvalidSupport(1)
            .to_string()
            .contains("k must be >= 2"));
        assert!(CoreError::InvalidTheta(1.5).to_string().contains("1.5"));
        assert!(CoreError::RadiusExceedsIndex {
            requested: 5,
            r_max: 3
        }
        .to_string()
        .contains("5"));
        assert!(CoreError::IndexGraphMismatch {
            graph_vertices: 10,
            index_vertices: 20
        }
        .to_string()
        .contains("20"));
    }
}
