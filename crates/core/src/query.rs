//! Online query parameters.
//!
//! A TopL-ICDE query (Definition 4) is specified by the query keyword set
//! `Q`, the truss support `k`, the maximum radius `r` of seed communities,
//! the influence threshold `θ` and the number of answers `L`. All of them are
//! "online" parameters: they arrive with each query, while the index is built
//! once offline.

use crate::error::{CoreError, CoreResult};
use icde_graph::{BitVector, KeywordSet};
use serde::{Deserialize, Serialize};

/// Parameters of one TopL-ICDE query (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopLQuery {
    /// Query keyword set `Q`; every seed-community member must contain at
    /// least one of these keywords.
    pub keywords: KeywordSet,
    /// Truss support parameter `k`: every edge of a seed community must be in
    /// at least `k − 2` triangles of the community.
    pub support: u32,
    /// Maximum radius `r`: every member must be within `r` hops of the centre
    /// inside the community.
    pub radius: u32,
    /// Influence threshold `θ ∈ [0, 1)` for membership in the influenced
    /// community.
    pub theta: f64,
    /// Number of seed communities to return (`L`).
    pub l: usize,
}

impl TopLQuery {
    /// Creates a query; use [`TopLQuery::validate`] (or the processors, which
    /// validate on entry) to check the parameters.
    pub fn new(keywords: KeywordSet, support: u32, radius: u32, theta: f64, l: usize) -> Self {
        TopLQuery {
            keywords,
            support,
            radius,
            theta,
            l,
        }
    }

    /// The paper's default parameters (Table III, bold values): `k = 4`,
    /// `r = 2`, `θ = 0.2`, `L = 5`.
    pub fn with_defaults(keywords: KeywordSet) -> Self {
        TopLQuery {
            keywords,
            support: 4,
            radius: 2,
            theta: 0.2,
            l: 5,
        }
    }

    /// Validates every parameter range from Definition 4.
    pub fn validate(&self) -> CoreResult<()> {
        if self.keywords.is_empty() {
            return Err(CoreError::EmptyQueryKeywords);
        }
        if self.l == 0 {
            return Err(CoreError::InvalidResultSize(self.l));
        }
        if self.support < 2 {
            return Err(CoreError::InvalidSupport(self.support));
        }
        if self.radius == 0 {
            return Err(CoreError::InvalidRadius(self.radius));
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(CoreError::InvalidTheta(self.theta));
        }
        Ok(())
    }

    /// Hashes the query keyword set into a signature of `bits` bits
    /// (`Q.BV`, Algorithm 3 line 1).
    pub fn keyword_signature(&self, bits: usize) -> BitVector {
        BitVector::from_keywords(&self.keywords, bits)
    }

    /// Returns a copy with a different result size `L` (used by DTopL-ICDE,
    /// which first fetches `n·L` candidates).
    pub fn with_result_size(&self, l: usize) -> Self {
        let mut q = self.clone();
        q.l = l;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keywords() -> KeywordSet {
        KeywordSet::from_ids([1, 2, 3])
    }

    #[test]
    fn defaults_match_table_iii() {
        let q = TopLQuery::with_defaults(keywords());
        assert_eq!(q.support, 4);
        assert_eq!(q.radius, 2);
        assert_eq!(q.theta, 0.2);
        assert_eq!(q.l, 5);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let q = TopLQuery::new(KeywordSet::new(), 4, 2, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::EmptyQueryKeywords));
        let q = TopLQuery::new(keywords(), 4, 2, 0.2, 0);
        assert_eq!(q.validate(), Err(CoreError::InvalidResultSize(0)));
        let q = TopLQuery::new(keywords(), 1, 2, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidSupport(1)));
        let q = TopLQuery::new(keywords(), 4, 0, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidRadius(0)));
        let q = TopLQuery::new(keywords(), 4, 2, 1.0, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidTheta(1.0)));
        let q = TopLQuery::new(keywords(), 4, 2, -0.1, 5);
        assert!(matches!(q.validate(), Err(CoreError::InvalidTheta(_))));
    }

    #[test]
    fn keyword_signature_covers_query_keywords() {
        let q = TopLQuery::with_defaults(keywords());
        let bv = q.keyword_signature(128);
        for kw in q.keywords.iter() {
            assert!(bv.maybe_contains(kw));
        }
    }

    #[test]
    fn with_result_size_changes_only_l() {
        let q = TopLQuery::with_defaults(keywords());
        let q3 = q.with_result_size(15);
        assert_eq!(q3.l, 15);
        assert_eq!(q3.support, q.support);
        assert_eq!(q3.keywords, q.keywords);
    }
}
