//! Online query parameters.
//!
//! A TopL-ICDE query (Definition 4) is specified by the query keyword set
//! `Q`, the truss support `k`, the maximum radius `r` of seed communities,
//! the influence threshold `θ` and the number of answers `L`. All of them are
//! "online" parameters: they arrive with each query, while the index is built
//! once offline.

use crate::error::{CoreError, CoreResult};
use icde_graph::snapshot::{fnv1a, fnv1a_extend};
use icde_graph::{BitVector, KeywordSet};
use serde::{Deserialize, Serialize};

/// Largest result size `L` a canonical query may request.
/// [`TopLQuery::canonicalize`] clamps `l` here so one pathological query
/// cannot make the collector (or a serving cache entry) allocate without
/// bound; any realistic Top-L request is orders of magnitude below it.
pub const MAX_RESULT_SIZE: usize = 1 << 16;

/// Parameters of one TopL-ICDE query (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopLQuery {
    /// Query keyword set `Q`; every seed-community member must contain at
    /// least one of these keywords.
    pub keywords: KeywordSet,
    /// Truss support parameter `k`: every edge of a seed community must be in
    /// at least `k − 2` triangles of the community.
    pub support: u32,
    /// Maximum radius `r`: every member must be within `r` hops of the centre
    /// inside the community.
    pub radius: u32,
    /// Influence threshold `θ ∈ [0, 1)` for membership in the influenced
    /// community.
    pub theta: f64,
    /// Number of seed communities to return (`L`).
    pub l: usize,
}

impl TopLQuery {
    /// Creates a query; use [`TopLQuery::validate`] (or the processors, which
    /// validate on entry) to check the parameters.
    pub fn new(keywords: KeywordSet, support: u32, radius: u32, theta: f64, l: usize) -> Self {
        TopLQuery {
            keywords,
            support,
            radius,
            theta,
            l,
        }
    }

    /// The paper's default parameters (Table III, bold values): `k = 4`,
    /// `r = 2`, `θ = 0.2`, `L = 5`.
    pub fn with_defaults(keywords: KeywordSet) -> Self {
        TopLQuery {
            keywords,
            support: 4,
            radius: 2,
            theta: 0.2,
            l: 5,
        }
    }

    /// Validates every parameter range from Definition 4.
    pub fn validate(&self) -> CoreResult<()> {
        if self.keywords.is_empty() {
            return Err(CoreError::EmptyQueryKeywords);
        }
        if self.l == 0 {
            return Err(CoreError::InvalidResultSize(self.l));
        }
        if self.support < 2 {
            return Err(CoreError::InvalidSupport(self.support));
        }
        if self.radius == 0 {
            return Err(CoreError::InvalidRadius(self.radius));
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(CoreError::InvalidTheta(self.theta));
        }
        Ok(())
    }

    /// Returns the query in canonical form, validated: keywords sorted and
    /// de-duplicated, `l` clamped to [`MAX_RESULT_SIZE`], every other
    /// parameter checked by [`TopLQuery::validate`].
    ///
    /// All query entry points (the processors, the serving runtime's cache
    /// key) agree on this one normal form, so two queries that differ only
    /// in keyword order or duplicates are the *same* query — they produce
    /// identical answers and identical [`TopLQuery::canonical_fingerprint`]s.
    pub fn canonicalize(&self) -> CoreResult<TopLQuery> {
        let mut q = self.clone();
        // `KeywordSet` sorts and de-duplicates on construction, so this is a
        // defensive re-normalisation: it matters only for sets produced by
        // paths that bypass the constructors (e.g. hand-edited JSON).
        q.keywords = q.keywords.iter().collect();
        q.l = q.l.min(MAX_RESULT_SIZE);
        q.validate()?;
        Ok(q)
    }

    /// An FNV-1a fingerprint of the canonical form
    /// `(sorted keywords, k, r, θ, L)` — the serving LRU's cache key.
    /// Queries that differ only in keyword order or duplicates fingerprint
    /// identically; any semantic difference (including `θ` at the bit level)
    /// fingerprints apart.
    pub fn canonical_fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"icde-query-key-v1");
        let word = |h: u64, v: u64| fnv1a_extend(h, &v.to_le_bytes());
        h = word(h, self.keywords.len() as u64);
        for kw in self.keywords.iter() {
            h = word(h, u64::from(kw.0));
        }
        h = word(h, u64::from(self.support));
        h = word(h, u64::from(self.radius));
        h = word(h, self.theta.to_bits());
        h = word(h, self.l.min(MAX_RESULT_SIZE) as u64);
        h
    }

    /// Hashes the query keyword set into a signature of `bits` bits
    /// (`Q.BV`, Algorithm 3 line 1).
    pub fn keyword_signature(&self, bits: usize) -> BitVector {
        BitVector::from_keywords(&self.keywords, bits)
    }

    /// Returns a copy with a different result size `L` (used by DTopL-ICDE,
    /// which first fetches `n·L` candidates).
    pub fn with_result_size(&self, l: usize) -> Self {
        let mut q = self.clone();
        q.l = l;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keywords() -> KeywordSet {
        KeywordSet::from_ids([1, 2, 3])
    }

    #[test]
    fn defaults_match_table_iii() {
        let q = TopLQuery::with_defaults(keywords());
        assert_eq!(q.support, 4);
        assert_eq!(q.radius, 2);
        assert_eq!(q.theta, 0.2);
        assert_eq!(q.l, 5);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let q = TopLQuery::new(KeywordSet::new(), 4, 2, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::EmptyQueryKeywords));
        let q = TopLQuery::new(keywords(), 4, 2, 0.2, 0);
        assert_eq!(q.validate(), Err(CoreError::InvalidResultSize(0)));
        let q = TopLQuery::new(keywords(), 1, 2, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidSupport(1)));
        let q = TopLQuery::new(keywords(), 4, 0, 0.2, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidRadius(0)));
        let q = TopLQuery::new(keywords(), 4, 2, 1.0, 5);
        assert_eq!(q.validate(), Err(CoreError::InvalidTheta(1.0)));
        let q = TopLQuery::new(keywords(), 4, 2, -0.1, 5);
        assert!(matches!(q.validate(), Err(CoreError::InvalidTheta(_))));
    }

    #[test]
    fn keyword_signature_covers_query_keywords() {
        let q = TopLQuery::with_defaults(keywords());
        let bv = q.keyword_signature(128);
        for kw in q.keywords.iter() {
            assert!(bv.maybe_contains(kw));
        }
    }

    #[test]
    fn permuted_and_duplicated_keywords_canonicalise_identically() {
        let a = TopLQuery::new(KeywordSet::from_ids([3, 1, 2]), 4, 2, 0.2, 5);
        let b = TopLQuery::new(KeywordSet::from_ids([2, 3, 1, 1, 2]), 4, 2, 0.2, 5);
        let ca = a.canonicalize().unwrap();
        let cb = b.canonicalize().unwrap();
        assert_eq!(ca, cb);
        assert_eq!(ca.canonical_fingerprint(), cb.canonical_fingerprint());
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn fingerprint_separates_semantically_different_queries() {
        let base = TopLQuery::with_defaults(keywords());
        let fp = base.canonical_fingerprint();
        let mut other = base.clone();
        other.support = 5;
        assert_ne!(fp, other.canonical_fingerprint());
        let mut other = base.clone();
        other.theta = 0.3;
        assert_ne!(fp, other.canonical_fingerprint());
        let mut other = base.clone();
        other.l = 6;
        assert_ne!(fp, other.canonical_fingerprint());
        let other = TopLQuery::with_defaults(KeywordSet::from_ids([1, 2, 4]));
        assert_ne!(fp, other.canonical_fingerprint());
    }

    #[test]
    fn canonicalize_clamps_l_and_rejects_invalid_parameters() {
        let big = TopLQuery::new(keywords(), 4, 2, 0.2, usize::MAX);
        assert_eq!(big.canonicalize().unwrap().l, MAX_RESULT_SIZE);
        // clamped and unclamped spellings of the same request share a key
        let max = TopLQuery::new(keywords(), 4, 2, 0.2, MAX_RESULT_SIZE);
        assert_eq!(big.canonical_fingerprint(), max.canonical_fingerprint());
        let bad = TopLQuery::new(keywords(), 1, 2, 0.2, 5);
        assert_eq!(bad.canonicalize(), Err(CoreError::InvalidSupport(1)));
        let bad = TopLQuery::new(KeywordSet::new(), 4, 2, 0.2, 5);
        assert_eq!(bad.canonicalize(), Err(CoreError::EmptyQueryKeywords));
    }

    #[test]
    fn with_result_size_changes_only_l() {
        let q = TopLQuery::with_defaults(keywords());
        let q3 = q.with_result_size(15);
        assert_eq!(q3.l, 15);
        assert_eq!(q3.support, q.support);
        assert_eq!(q3.keywords, q.keywords);
    }
}
