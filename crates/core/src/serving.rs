//! Concurrent query-serving runtime: worker pool, hot snapshot swap, and a
//! canonicalised query LRU.
//!
//! Everything below this module is one-shot: a caller builds (or loads) a
//! graph + index pair, runs a query, and throws the state away. This module
//! turns that pair into a long-lived *service*:
//!
//! * [`ServingSnapshot`] — an immutable bundle of one graph and the index
//!   built over it, tagged with a publication **epoch** and the index's
//!   content fingerprint. Queries always run against exactly one snapshot,
//!   so they can never observe a half-swapped graph/index pair.
//! * **Hot swap** — the runtime holds the current snapshot behind an
//!   `RwLock<Arc<ServingSnapshot>>` (the `ArcSwap` shape without the
//!   dependency: a load is a brief read-lock + `Arc` clone, a publish is a
//!   write-lock + pointer swap). Maintenance publishes a fresh snapshot
//!   while in-flight queries drain on the old `Arc`; the old snapshot is
//!   freed when its last in-flight query drops its clone.
//! * **Worker pool** — N worker threads pull [`Job`]s from one bounded,
//!   mutex-guarded ring ([`BoundedQueue`]). Each worker thread owns its
//!   [`TraversalWorkspace`] through the kernel's thread-local
//!   (`with_thread_workspace`), so workers never contend on scratch space.
//! * **Sharded LRU** — answers are cached under the query's
//!   [`TopLQuery::canonical_fingerprint`] (sorted keywords, `k`, `r`, `θ`,
//!   `L`), sharded with per-shard locks. Every entry records the epoch it
//!   was computed under; a lookup made under a newer epoch evicts the entry
//!   instead of serving it, so a swap implicitly invalidates the whole
//!   cache without a stop-the-world flush.
//!
//! Per-query [`PruningStats`] are merged into a serving-level rollup
//! ([`PruningStats::merge`]); because every counter is a plain sum, the
//! rollup is independent of worker count and interleaving.
//!
//! [`TraversalWorkspace`]: icde_graph::workspace::TraversalWorkspace

use crate::error::{CoreError, CoreResult};
use crate::index::CommunityIndex;
use crate::query::TopLQuery;
use crate::stats::PruningStats;
use crate::topl::{TopLAnswer, TopLProcessor};
use icde_graph::SocialNetwork;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Instant;

/// Default number of worker threads when the caller does not choose one.
pub const DEFAULT_WORKERS: usize = 4;
/// Default capacity of the bounded job queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;
/// Default number of LRU shards.
pub const DEFAULT_CACHE_SHARDS: usize = 16;
/// Default total number of cached answers across all shards.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Configuration of a [`ServingRuntime`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Capacity of the bounded job queue; [`ServingRuntime::submit`] blocks
    /// when the queue is full (backpressure instead of unbounded growth).
    pub queue_capacity: usize,
    /// Number of independently-locked LRU shards (≥ 1).
    pub cache_shards: usize,
    /// Total answer capacity across all shards; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: DEFAULT_WORKERS,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            cache_shards: DEFAULT_CACHE_SHARDS,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl ServingConfig {
    /// A configuration with `workers` threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        ServingConfig {
            workers,
            ..Default::default()
        }
    }
}

/// An immutable graph + index pair published to the serving runtime.
///
/// The epoch is assigned at publication time and strictly increases with
/// every swap; the fingerprint is the index's
/// [`CommunityIndex::content_fingerprint`], so two snapshots with identical
/// flat arrays carry the same fingerprint even across a reload.
#[derive(Debug)]
pub struct ServingSnapshot {
    /// The social network queries traverse.
    pub graph: SocialNetwork,
    /// The index built over `graph`.
    pub index: CommunityIndex,
    epoch: u64,
    fingerprint: u64,
}

impl ServingSnapshot {
    fn new(graph: SocialNetwork, index: CommunityIndex, epoch: u64) -> CoreResult<Self> {
        let fingerprint = index.content_fingerprint();
        Self::with_fingerprint(graph, index, epoch, fingerprint)
    }

    fn with_fingerprint(
        graph: SocialNetwork,
        index: CommunityIndex,
        epoch: u64,
        fingerprint: u64,
    ) -> CoreResult<Self> {
        if graph.num_vertices() != index.num_graph_vertices() {
            return Err(CoreError::IndexGraphMismatch {
                graph_vertices: graph.num_vertices(),
                index_vertices: index.num_graph_vertices(),
            });
        }
        Ok(ServingSnapshot {
            graph,
            index,
            epoch,
            fingerprint,
        })
    }

    /// The publication epoch (1 for the snapshot the runtime started on).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The index content fingerprint the snapshot was published with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingError {
    /// The query itself was rejected (validation or index mismatch).
    Query(CoreError),
    /// The runtime shut down before the query could be answered.
    Shutdown,
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Query(e) => write!(f, "query rejected: {e}"),
            ServingError::Shutdown => write!(f, "serving runtime shut down"),
        }
    }
}

impl std::error::Error for ServingError {}

/// One answered query, tagged with the snapshot it was answered on.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The answer, bit-identical to a single-threaded
    /// [`TopLProcessor::run`] on the same snapshot. Shared with the LRU (a
    /// cache hit is an `Arc` clone, not a deep copy of the communities).
    pub answer: Arc<TopLAnswer>,
    /// Epoch of the snapshot the answer was computed (or cached) under.
    pub epoch: u64,
    /// Content fingerprint of that snapshot.
    pub snapshot_fingerprint: u64,
    /// `true` when the answer came out of the LRU without running the
    /// kernel.
    pub cache_hit: bool,
}

/// A handle to one submitted query; resolves to the answer (or error) once a
/// worker picks the job up.
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<ServedAnswer, ServingError>>,
}

impl QueryTicket {
    /// Blocks until the query is answered.
    pub fn wait(self) -> Result<ServedAnswer, ServingError> {
        self.rx.recv().unwrap_or(Err(ServingError::Shutdown))
    }
}

/// Number of power-of-two latency buckets: bucket 0 holds sub-microsecond
/// serves, bucket `i ≥ 1` holds latencies in `[2^(i-1), 2^i)` microseconds,
/// and the last bucket absorbs everything from ~67 s up.
pub const LATENCY_BUCKETS: usize = 27;

/// A log₂-scale latency histogram over microseconds.
///
/// Fixed-size and allocation-free so workers can record under a short lock;
/// quantiles come back as the upper edge of the bucket holding the rank,
/// which is exact to within a factor of two — enough to tell a 3 µs cache
/// hit from a 250 ms kernel run at a glance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts serves with `floor(log2(µs)) + 1 == i` (see
    /// [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Serves recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in microseconds.
    pub total_micros: u64,
    /// Largest recorded latency, in microseconds.
    pub max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }
}

impl LatencyHistogram {
    fn record(&mut self, micros: u64) {
        let idx = (u64::BITS - micros.leading_zeros()) as usize;
        self.buckets[idx.min(LATENCY_BUCKETS - 1)] += 1;
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Mean latency in microseconds (`0.0` when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }

    /// Upper bound (in microseconds) of the bucket containing quantile `q`
    /// (e.g. `0.5`, `0.99`); `0` when empty. The true latency lies within a
    /// factor of two below the returned bound.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max_micros
    }

    /// Folds another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Serve latencies observed under one snapshot epoch, split by cache
/// outcome.
///
/// This is the p99-attribution instrument: a publish invalidates the whole
/// LRU lazily, so the first serve of each hot query after a swap re-runs the
/// kernel. That cost shows up here as a `misses` population at kernel
/// latency appearing in the epoch *after* every swap, while `hits` stay at
/// Arc-clone latency — making a fat p99 attributable to publish cadence
/// rather than to a slow kernel or queueing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochLatency {
    /// The snapshot epoch the serves ran under.
    pub epoch: u64,
    /// Latencies of serves answered from the LRU.
    pub hits: LatencyHistogram,
    /// Latencies of serves that ran the kernel (including the post-swap
    /// re-executions of queries the previous epoch had cached).
    pub misses: LatencyHistogram,
}

/// Counter snapshot of a runtime (live via [`ServingRuntime::stats`], final
/// via [`ServingRuntime::shutdown`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingStats {
    /// Queries answered by running the kernel.
    pub queries_executed: u64,
    /// Queries answered straight from the LRU.
    pub cache_hits: u64,
    /// Cache lookups that missed (stale-epoch entries count as misses).
    pub cache_misses: u64,
    /// Queries rejected by validation.
    pub queries_failed: u64,
    /// Snapshots published after the initial one.
    pub swaps: u64,
    /// Merged per-query pruning counters of every executed query.
    pub pruning: PruningStats,
    /// Per-epoch serve-latency histograms, ascending by epoch.
    pub latency_by_epoch: Vec<EpochLatency>,
}

impl ServingStats {
    /// Cache hit rate over all lookups (`0.0` when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// All serve latencies folded across epochs and cache outcomes.
    pub fn overall_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::default();
        for e in &self.latency_by_epoch {
            all.merge(&e.hits);
            all.merge(&e.misses);
        }
        all
    }
}

struct Job {
    query: TopLQuery,
    reply: mpsc::Sender<Result<ServedAnswer, ServingError>>,
}

/// Bounded MPMC job queue: a mutex-guarded ring with two condition
/// variables. Push blocks while full, pop blocks while empty; `close`
/// wakes everyone and drains to `None`.
struct BoundedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns the job
    /// back when the queue has been closed.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.jobs.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next job, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained, so workers finish
    /// every accepted job before exiting.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct CacheEntry {
    epoch: u64,
    tick: u64,
    answer: Arc<TopLAnswer>,
}

struct LruShard {
    entries: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// The canonical-query LRU: `shards` independently-locked maps, each keyed
/// by [`TopLQuery::canonical_fingerprint`] and evicting its least-recently
/// touched entry at capacity (the shard capacities partition the total).
struct ShardedLru {
    shards: Vec<Mutex<LruShard>>,
    per_shard_capacity: usize,
}

impl ShardedLru {
    fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = if total_capacity == 0 {
            0
        } else {
            total_capacity.div_ceil(shards)
        };
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(LruShard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<LruShard> {
        // the key is already an FNV hash; fold the high bits in so shard
        // selection uses more than the low word
        &self.shards[((key ^ (key >> 32)) as usize) % self.shards.len()]
    }

    /// A hit must match both key and epoch; an entry from an older epoch is
    /// evicted on sight, so a snapshot swap invalidates lazily with no
    /// global flush. Hits hand out a shared `Arc` handle, never a deep copy
    /// — a Zipf-hot key maps every hit to one shard, so cloning the full
    /// answer under the shard lock would serialise the whole pool on it.
    fn get(&self, key: u64, epoch: u64) -> Option<Arc<TopLAnswer>> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&key) {
            Some(entry) if entry.epoch == epoch => {
                entry.tick = tick;
                Some(Arc::clone(&entry.answer))
            }
            Some(_) => {
                shard.entries.remove(&key);
                None
            }
            None => None,
        }
    }

    fn insert(&self, key: u64, epoch: u64, answer: Arc<TopLAnswer>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
            // evict the least-recently touched entry; shards are small, so a
            // linear scan beats maintaining an intrusive recency list
            if let Some(&lru_key) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&lru_key);
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(
            key,
            CacheEntry {
                epoch,
                tick,
                answer,
            },
        );
    }
}

struct Shared {
    current: RwLock<Arc<ServingSnapshot>>,
    next_epoch: AtomicU64,
    queue: BoundedQueue,
    cache: ShardedLru,
    queries_executed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queries_failed: AtomicU64,
    swaps: AtomicU64,
    pruning: Mutex<PruningStats>,
    /// Epoch → serve-latency histograms. Recording is a short lock over a
    /// fixed-size array update; the map only grows on publish.
    latency: Mutex<HashMap<u64, EpochLatency>>,
}

impl Shared {
    /// The `ArcSwap`-style load: a brief read-lock to clone the current
    /// `Arc`. The clone keeps the snapshot alive however long the query
    /// runs, so a concurrent publish never frees state under a worker.
    fn load(&self) -> Arc<ServingSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Records one serve into the per-epoch histograms.
    fn record_latency(&self, epoch: u64, cache_hit: bool, started: Instant) {
        let micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut map = self.latency.lock().expect("latency lock poisoned");
        let entry = map.entry(epoch).or_insert_with(|| EpochLatency {
            epoch,
            ..Default::default()
        });
        if cache_hit {
            entry.hits.record(micros);
        } else {
            entry.misses.record(micros);
        }
    }

    fn serve(&self, query: &TopLQuery) -> Result<ServedAnswer, ServingError> {
        let started = Instant::now();
        let canonical = match query.canonicalize() {
            Ok(q) => q,
            Err(e) => {
                self.queries_failed.fetch_add(1, Ordering::Relaxed);
                return Err(ServingError::Query(e));
            }
        };
        let key = canonical.canonical_fingerprint();
        let snapshot = self.load();
        if let Some(answer) = self.cache.get(key, snapshot.epoch) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.record_latency(snapshot.epoch, true, started);
            return Ok(ServedAnswer {
                answer,
                epoch: snapshot.epoch,
                snapshot_fingerprint: snapshot.fingerprint,
                cache_hit: true,
            });
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let processor = TopLProcessor::new(&snapshot.graph, &snapshot.index);
        match processor.run(&canonical) {
            Ok(answer) => {
                let answer = Arc::new(answer);
                self.queries_executed.fetch_add(1, Ordering::Relaxed);
                self.pruning
                    .lock()
                    .expect("stats lock poisoned")
                    .merge(&answer.stats);
                // keyed under the epoch the kernel actually ran on: if a
                // swap landed mid-run, the entry is already stale and the
                // next lookup (made under the new epoch) evicts it
                self.cache.insert(key, snapshot.epoch, Arc::clone(&answer));
                self.record_latency(snapshot.epoch, false, started);
                Ok(ServedAnswer {
                    answer,
                    epoch: snapshot.epoch,
                    snapshot_fingerprint: snapshot.fingerprint,
                    cache_hit: false,
                })
            }
            Err(e) => {
                self.queries_failed.fetch_add(1, Ordering::Relaxed);
                Err(ServingError::Query(e))
            }
        }
    }

    fn stats(&self) -> ServingStats {
        let mut latency_by_epoch: Vec<EpochLatency> = self
            .latency
            .lock()
            .expect("latency lock poisoned")
            .values()
            .cloned()
            .collect();
        latency_by_epoch.sort_unstable_by_key(|e| e.epoch);
        ServingStats {
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            pruning: *self.pruning.lock().expect("stats lock poisoned"),
            latency_by_epoch,
        }
    }
}

/// The serving runtime: worker pool + hot-swappable snapshot + query LRU
/// (see the module docs).
pub struct ServingRuntime {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServingRuntime {
    /// Starts `config.workers` worker threads serving queries against the
    /// given graph + index pair (published as epoch 1).
    pub fn start(
        config: ServingConfig,
        graph: SocialNetwork,
        index: CommunityIndex,
    ) -> CoreResult<ServingRuntime> {
        let initial = ServingSnapshot::new(graph, index, 1)?;
        let shared = Arc::new(Shared {
            current: RwLock::new(Arc::new(initial)),
            next_epoch: AtomicU64::new(2),
            queue: BoundedQueue::new(config.queue_capacity),
            cache: ShardedLru::new(config.cache_shards, config.cache_capacity),
            queries_executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            pruning: Mutex::new(PruningStats::new()),
            latency: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("icde-serve-{i}"))
                    .spawn(move || {
                        // each pop → serve → reply runs on this thread, so
                        // the kernel's thread-local workspace makes every
                        // worker own one TraversalWorkspace for its lifetime
                        while let Some(job) = shared.queue.pop() {
                            let outcome = shared.serve(&job.query);
                            // a dropped ticket just means nobody is waiting
                            let _ = job.reply.send(outcome);
                        }
                    })
                    .expect("failed to spawn serving worker")
            })
            .collect();
        Ok(ServingRuntime { shared, workers })
    }

    /// Publishes a fresh graph + index pair, atomically replacing the
    /// current snapshot. In-flight queries keep draining on the old
    /// snapshot; queries served afterwards see the new epoch, and every
    /// cached answer from older epochs becomes unservable.
    pub fn publish(
        &self,
        graph: SocialNetwork,
        index: CommunityIndex,
    ) -> CoreResult<Arc<ServingSnapshot>> {
        let epoch = self.shared.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(ServingSnapshot::new(graph, index, epoch)?);
        *self.shared.current.write().expect("snapshot lock poisoned") = Arc::clone(&snapshot);
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(snapshot)
    }

    /// [`publish`](Self::publish) with a caller-supplied content tag instead
    /// of the O(n + m) [`CommunityIndex::content_fingerprint`] hash. The
    /// streaming maintainer evolves its tag incrementally per applied
    /// update, so each publish stays proportional to the update footprint;
    /// cache keying only needs the tag to *change* whenever the content
    /// does, which the maintainer guarantees.
    pub fn publish_with_fingerprint(
        &self,
        graph: SocialNetwork,
        index: CommunityIndex,
        fingerprint: u64,
    ) -> CoreResult<Arc<ServingSnapshot>> {
        let epoch = self.shared.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(ServingSnapshot::with_fingerprint(
            graph,
            index,
            epoch,
            fingerprint,
        )?);
        *self.shared.current.write().expect("snapshot lock poisoned") = Arc::clone(&snapshot);
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(snapshot)
    }

    /// The currently-published snapshot.
    pub fn current(&self) -> Arc<ServingSnapshot> {
        self.shared.load()
    }

    /// Enqueues a query, blocking while the job queue is full. The ticket
    /// resolves once a worker answers (or resolves to
    /// [`ServingError::Shutdown`] if the runtime stopped first).
    pub fn submit(&self, query: TopLQuery) -> QueryTicket {
        let (tx, rx) = mpsc::channel();
        if let Err(job) = self.shared.queue.push(Job { query, reply: tx }) {
            let _ = job.reply.send(Err(ServingError::Shutdown));
        }
        QueryTicket { rx }
    }

    /// A live snapshot of the serving counters.
    pub fn stats(&self) -> ServingStats {
        self.shared.stats()
    }

    /// Stops accepting new queries, drains the queue, joins every worker
    /// and returns the final counters.
    pub fn shutdown(mut self) -> ServingStats {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.stats()
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn build(seed: u64) -> (SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, 200, seed)
            .with_keyword_domain(12)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_fanout(4)
        .with_leaf_capacity(8)
        .build(&g);
        (g, index)
    }

    fn query(ids: [u32; 3], l: usize) -> TopLQuery {
        TopLQuery::new(KeywordSet::from_ids(ids), 3, 2, 0.2, l)
    }

    /// Every answer field that must be bit-identical, flattened per
    /// community: (centre id, score bits, influenced size, vertex ids).
    type AnswerBits = Vec<(u32, u64, usize, Vec<u32>)>;

    fn answer_bits(answer: &TopLAnswer) -> AnswerBits {
        answer
            .communities
            .iter()
            .map(|c| {
                (
                    c.center.0,
                    c.influential_score.to_bits(),
                    c.influenced_size,
                    c.vertices.iter().map(|v| v.0).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn served_answers_are_bit_identical_to_single_threaded_runs() {
        let (g, index) = build(11);
        let expected = TopLProcessor::new(&g, &index)
            .run(&query([0, 1, 2], 5))
            .unwrap();
        let runtime = ServingRuntime::start(ServingConfig::with_workers(2), g, index).unwrap();
        let first = runtime.submit(query([0, 1, 2], 5)).wait().unwrap();
        assert!(!first.cache_hit);
        assert_eq!(answer_bits(&first.answer), answer_bits(&expected));
        // permuted keywords canonicalise onto the same key → cache hit
        let second = runtime.submit(query([2, 0, 1], 5)).wait().unwrap();
        assert!(second.cache_hit);
        assert_eq!(answer_bits(&second.answer), answer_bits(&expected));
        assert_eq!(first.epoch, 1);
        assert_eq!(second.snapshot_fingerprint, first.snapshot_fingerprint);
        let stats = runtime.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.queries_executed, 1);
        assert_eq!(stats.queries_failed, 0);
    }

    #[test]
    fn invalid_queries_fail_without_poisoning_the_pool() {
        let (g, index) = build(12);
        let runtime = ServingRuntime::start(ServingConfig::with_workers(2), g, index).unwrap();
        let bad = runtime
            .submit(TopLQuery::new(KeywordSet::new(), 3, 2, 0.2, 5))
            .wait();
        assert_eq!(
            bad.unwrap_err(),
            ServingError::Query(CoreError::EmptyQueryKeywords)
        );
        let good = runtime.submit(query([0, 1, 2], 5)).wait();
        assert!(good.is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_executed, 1);
    }

    #[test]
    fn submit_after_shutdown_resolves_to_shutdown_error() {
        let (g, index) = build(13);
        let runtime =
            ServingRuntime::start(ServingConfig::with_workers(1), g.clone(), index).unwrap();
        runtime.shared.queue.close();
        let ticket = runtime.submit(query([0, 1, 2], 5));
        assert_eq!(ticket.wait().unwrap_err(), ServingError::Shutdown);
    }

    #[test]
    fn merged_worker_counters_equal_the_sequential_run() {
        let (g, index) = build(14);
        // distinct queries so every one runs the kernel exactly once
        let queries: Vec<TopLQuery> = (0..10u32)
            .map(|i| query([i % 12, (i + 3) % 12, (i + 7) % 12], 3 + (i as usize % 4)))
            .collect();
        let processor = TopLProcessor::new(&g, &index);
        let mut expected = PruningStats::new();
        for q in &queries {
            expected.merge(&processor.run(q).unwrap().stats);
        }
        let runtime =
            ServingRuntime::start(ServingConfig::with_workers(4), g.clone(), index.clone())
                .unwrap();
        let tickets: Vec<QueryTicket> = queries.iter().map(|q| runtime.submit(q.clone())).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.pruning, expected);
        assert_eq!(stats.queries_executed, queries.len() as u64);
    }

    #[test]
    fn swap_under_load_serves_only_published_snapshots() {
        let (graph_a, index_a) = build(21);
        let (graph_b, index_b) = build(22);
        let fp_a = index_a.content_fingerprint();
        let fp_b = index_b.content_fingerprint();
        assert_ne!(fp_a, fp_b);

        // single-threaded reference answers per snapshot — the bit-identity
        // oracle for everything the pool returns
        let pool: Vec<TopLQuery> = (0..8u32)
            .map(|i| query([i % 12, (i + 4) % 12, (i + 8) % 12], 5))
            .collect();
        let mut reference: HashMap<(u64, u64), AnswerBits> = HashMap::new();
        for (g, idx, fp) in [(&graph_a, &index_a, fp_a), (&graph_b, &index_b, fp_b)] {
            let p = TopLProcessor::new(g, idx);
            for q in &pool {
                let key = q.canonical_fingerprint();
                reference.insert((fp, key), answer_bits(&p.run(q).unwrap()));
            }
        }

        let runtime = ServingRuntime::start(
            ServingConfig {
                workers: 4,
                queue_capacity: 32,
                cache_shards: 4,
                cache_capacity: 64,
            },
            graph_a,
            index_a,
        )
        .unwrap();

        const ROUNDS: usize = 30;
        let mut outstanding: Vec<(u64, QueryTicket)> = Vec::new();
        let mut served = 0u64;
        let mut hits_after_swap = 0u64;
        for round in 0..ROUNDS {
            if round == ROUNDS / 2 {
                let published = runtime.publish(graph_b.clone(), index_b.clone()).unwrap();
                assert_eq!(published.epoch(), 2);
                assert_eq!(published.fingerprint(), fp_b);
            }
            for q in &pool {
                outstanding.push((q.canonical_fingerprint(), runtime.submit(q.clone())));
            }
            // drain periodically so the bounded queue keeps moving
            if round % 3 == 2 {
                for (key, ticket) in outstanding.drain(..) {
                    let answer = ticket.wait().unwrap();
                    assert!(
                        answer.snapshot_fingerprint == fp_a || answer.snapshot_fingerprint == fp_b,
                        "answer claims an unpublished snapshot"
                    );
                    if answer.cache_hit && answer.epoch == 2 {
                        hits_after_swap += 1;
                    }
                    // a torn snapshot or a stale LRU entry surfaces here:
                    // the answer must be bit-identical to the sequential
                    // reference of the exact snapshot it claims
                    assert_eq!(
                        answer_bits(&answer.answer),
                        reference[&(answer.snapshot_fingerprint, key)],
                        "answer disagrees with its claimed snapshot"
                    );
                    // the epoch ↔ fingerprint pairing must be consistent
                    let expected_fp = if answer.epoch == 1 { fp_a } else { fp_b };
                    assert_eq!(answer.snapshot_fingerprint, expected_fp);
                    served += 1;
                }
            }
        }
        for (key, ticket) in outstanding.drain(..) {
            let answer = ticket.wait().unwrap();
            assert_eq!(
                answer_bits(&answer.answer),
                reference[&(answer.snapshot_fingerprint, key)]
            );
            served += 1;
        }
        let stats = runtime.shutdown();
        assert_eq!(served, (ROUNDS * pool.len()) as u64);
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.swaps, 1);
        assert_eq!(
            stats.cache_hits + stats.queries_executed,
            served,
            "every query was either executed or served from cache"
        );
        assert!(stats.cache_hits > 0, "repeated queries must hit the LRU");
        // the second epoch re-executes before it can hit again, and those
        // hits are epoch-2 entries — never epoch-1 leftovers (checked
        // bit-exactly against the reference above)
        assert!(hits_after_swap > 0);
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for micros in [0, 1, 3, 200_000] {
            h.record(micros);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.max_micros, 200_000);
        assert_eq!(h.total_micros, 200_004);
        assert_eq!(h.buckets[0], 1); // the 0 µs serve
        assert_eq!(h.buckets[1], 1); // 1 µs
        assert_eq!(h.buckets[2], 1); // 3 µs → [2, 4)
        assert_eq!(h.buckets[18], 1); // 200 ms → [2^17, 2^18) µs
                                      // p50 (rank 2) lands in the 1 µs bucket, p99 in the 200 ms one
        assert_eq!(h.quantile_upper_micros(0.5), 2);
        assert_eq!(h.quantile_upper_micros(0.99), 1 << 18);
        assert_eq!(LatencyHistogram::default().quantile_upper_micros(0.99), 0);
        // a huge outlier saturates into the last bucket instead of indexing
        // out of range
        h.record(u64::MAX / 2);
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 1);
    }

    /// The p99-vs-p50 diagnosis instrument: every publish lazily invalidates
    /// the LRU, so hot queries re-execute the kernel once per epoch. The
    /// per-epoch split must show those re-executions as epoch-2 *misses*
    /// (kernel-speed) while epoch-2 *hits* stay at Arc-clone speed.
    #[test]
    fn per_epoch_latency_attributes_post_swap_reexecution() {
        let (g, index) = build(23);
        let runtime =
            ServingRuntime::start(ServingConfig::with_workers(1), g.clone(), index.clone())
                .unwrap();
        let hot = query([0, 1, 2], 5);
        // epoch 1: one miss, two hits
        for _ in 0..3 {
            runtime.submit(hot.clone()).wait().unwrap();
        }
        // the swap invalidates the cached answer …
        runtime.publish(g, index).unwrap();
        // … so the same hot query misses once more before hitting again
        let reexecuted = runtime.submit(hot.clone()).wait().unwrap();
        assert!(!reexecuted.cache_hit);
        assert_eq!(reexecuted.epoch, 2);
        let hit = runtime.submit(hot).wait().unwrap();
        assert!(hit.cache_hit);

        let stats = runtime.shutdown();
        assert_eq!(stats.latency_by_epoch.len(), 2);
        let (e1, e2) = (&stats.latency_by_epoch[0], &stats.latency_by_epoch[1]);
        assert_eq!((e1.epoch, e1.misses.count, e1.hits.count), (1, 1, 2));
        assert_eq!((e2.epoch, e2.misses.count, e2.hits.count), (2, 1, 1));
        let overall = stats.overall_latency();
        assert_eq!(overall.count, 5);
        assert_eq!(
            overall.count,
            stats.cache_hits + stats.queries_executed,
            "every answered serve is recorded exactly once"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used_within_capacity() {
        let cache = ShardedLru::new(1, 2);
        let (g, index) = build(15);
        let answer = Arc::new(
            TopLProcessor::new(&g, &index)
                .run(&query([0, 1, 2], 3))
                .unwrap(),
        );
        cache.insert(1, 1, Arc::clone(&answer));
        cache.insert(2, 1, Arc::clone(&answer));
        assert!(cache.get(1, 1).is_some()); // touch 1 → 2 becomes LRU
        cache.insert(3, 1, Arc::clone(&answer));
        assert!(cache.get(2, 1).is_none(), "LRU entry evicted");
        assert!(cache.get(1, 1).is_some());
        assert!(cache.get(3, 1).is_some());
        // epoch bump rejects and evicts the stale entry
        assert!(cache.get(1, 2).is_none());
        assert!(cache.get(1, 1).is_none(), "stale entry was dropped");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (g, index) = build(16);
        let runtime = ServingRuntime::start(
            ServingConfig {
                workers: 2,
                cache_capacity: 0,
                ..Default::default()
            },
            g,
            index,
        )
        .unwrap();
        for _ in 0..3 {
            runtime.submit(query([0, 1, 2], 5)).wait().unwrap();
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.queries_executed, 3);
    }

    #[test]
    fn mismatched_pair_is_rejected_at_publish_time() {
        let (g, index) = build(17);
        let (small, _) = build(18);
        let small = {
            // a graph with a different vertex count
            let spec = DatasetSpec::new(DatasetKind::Uniform, 150, 19).with_keyword_domain(12);
            drop(small);
            spec.generate()
        };
        assert!(matches!(
            ServingRuntime::start(ServingConfig::default(), small.clone(), index.clone()),
            Err(CoreError::IndexGraphMismatch { .. })
        ));
        let runtime = ServingRuntime::start(ServingConfig::with_workers(1), g, index).unwrap();
        assert!(matches!(
            runtime.publish(small, runtime.current().index.clone()),
            Err(CoreError::IndexGraphMismatch { .. })
        ));
        assert_eq!(runtime.stats().swaps, 0);
    }
}
