//! Flattened (struct-of-arrays) aggregate storage shared by the pre-computed
//! per-vertex data and the tree-index node bounds.
//!
//! The pre-PR-4 layout was pointer-rich: every vertex (and every index node)
//! owned a `Vec<RadiusAggregate>`, each element owning a `BitVector` word
//! vector and a score vector — five heap allocations per entity and no way
//! to serialise the whole thing flat. Every aggregate is perfectly
//! rectangular, though: `entities × r_max` rows, each with a fixed-width
//! signature block, one support bound, `m` score bounds and one region size.
//! [`AggregateTable`] therefore stores four contiguous arrays keyed by
//! `(entity, r, θ_index)`:
//!
//! * `signatures[((entity·r_max)+(r−1))·W .. +W]` — the `W = ⌈bits/64⌉`
//!   signature words,
//! * `supports[(entity·r_max)+(r−1)]` — `ub_sup_r`,
//! * `scores[(((entity·r_max)+(r−1))·m)+z]` — `σ_z`,
//! * `region_sizes[(entity·r_max)+(r−1)]`.
//!
//! Index traversal reads rows through the borrowed [`AggregateRef`] view
//! (cache-local, no pointer chasing), and the binary snapshot writer dumps
//! the four arrays verbatim.

use crate::precompute::RadiusAggregate;
use icde_graph::snapshot::{FlatVec, SectionShadow};
use icde_graph::{BitVector, SignatureRef};
use serde::{Deserialize, Serialize};

/// Borrowed view of one `(entity, radius)` aggregate row — field-compatible
/// with the owned [`RadiusAggregate`].
#[derive(Debug, Clone, Copy)]
pub struct AggregateRef<'a> {
    /// OR of the keyword signatures of every vertex in the region (`BV_r`).
    pub keyword_signature: SignatureRef<'a>,
    /// Maximum data-graph edge support over the region's edges (`ub_sup_r`).
    pub support_upper_bound: u32,
    /// `σ_z` for each pre-selected threshold.
    pub score_upper_bounds: &'a [f64],
    /// Number of vertices in the region.
    pub region_size: u32,
}

impl AggregateRef<'_> {
    /// Copies the row into an owned [`RadiusAggregate`].
    pub fn to_owned_aggregate(&self) -> RadiusAggregate {
        RadiusAggregate {
            keyword_signature: self.keyword_signature.to_owned_sig(),
            support_upper_bound: self.support_upper_bound,
            score_upper_bounds: self.score_upper_bounds.to_vec(),
            region_size: self.region_size,
        }
    }
}

/// The flattened aggregate store (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateTable {
    entities: usize,
    r_max: u32,
    signature_bits: usize,
    num_thresholds: usize,
    /// `entities · r_max · ⌈signature_bits/64⌉` signature words.
    ///
    /// The four column arrays are [`FlatVec`]s so a snapshot-loaded table
    /// reads straight off the mapped file (zero-copy, like the graph's CSR
    /// arrays); in-memory builds own plain vectors. Mutation goes through
    /// [`FlatVec::to_mut`] — copy-on-write at whole-array granularity —
    /// so incremental maintenance keeps working on loaded tables.
    signatures: FlatVec<u64>,
    /// `entities · r_max` support upper bounds.
    supports: FlatVec<u32>,
    /// `entities · r_max · num_thresholds` score upper bounds.
    scores: FlatVec<f64>,
    /// `entities · r_max` region sizes.
    region_sizes: FlatVec<u32>,
}

impl AggregateTable {
    /// Creates a zeroed table for `entities` entities.
    ///
    /// # Panics
    /// Panics if `r_max`, `signature_bits` or `num_thresholds` is zero.
    pub fn new(entities: usize, r_max: u32, signature_bits: usize, num_thresholds: usize) -> Self {
        assert!(r_max >= 1, "r_max must be at least 1");
        assert!(signature_bits > 0, "signature width must be positive");
        assert!(num_thresholds > 0, "at least one threshold is required");
        let rows = entities * r_max as usize;
        AggregateTable {
            entities,
            r_max,
            signature_bits,
            num_thresholds,
            signatures: vec![0; rows * signature_bits.div_ceil(64)].into(),
            supports: vec![0; rows].into(),
            scores: vec![0.0; rows * num_thresholds].into(),
            region_sizes: vec![0; rows].into(),
        }
    }

    /// Rebuilds a table from its raw arrays (the binary snapshot loader
    /// passes mapped [`FlatVec`] views, keeping the load zero-copy; owned
    /// vectors convert via `.into()`); errors when the lengths do not agree
    /// with the dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        entities: usize,
        r_max: u32,
        signature_bits: usize,
        num_thresholds: usize,
        signatures: impl Into<FlatVec<u64>>,
        supports: impl Into<FlatVec<u32>>,
        scores: impl Into<FlatVec<f64>>,
        region_sizes: impl Into<FlatVec<u32>>,
    ) -> Result<Self, String> {
        let table = AggregateTable {
            entities,
            r_max,
            signature_bits,
            num_thresholds,
            signatures: signatures.into(),
            supports: supports.into(),
            scores: scores.into(),
            region_sizes: region_sizes.into(),
        };
        table.validate()?;
        Ok(table)
    }

    /// Checks the dimension/array-length invariants every accessor indexes
    /// by. Run on every untrusted source (binary snapshot sections, JSON
    /// deserialisation) so a malformed table errors instead of panicking on
    /// first row access.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.r_max == 0 || self.signature_bits == 0 || self.num_thresholds == 0 {
            return Err("aggregate table dimensions must be positive".to_string());
        }
        let rows = self
            .entities
            .checked_mul(self.r_max as usize)
            .ok_or("aggregate table row count overflows")?;
        let words = rows
            .checked_mul(self.signature_bits.div_ceil(64))
            .ok_or("aggregate table signature block overflows")?;
        let scores = rows
            .checked_mul(self.num_thresholds)
            .ok_or("aggregate table score block overflows")?;
        if self.signatures.len() != words
            || self.supports.len() != rows
            || self.scores.len() != scores
            || self.region_sizes.len() != rows
        {
            return Err(format!(
                "aggregate table arrays disagree with {} entities × {} radii",
                self.entities, self.r_max
            ));
        }
        Ok(())
    }

    /// Number of entities (vertices or index nodes).
    pub fn entities(&self) -> usize {
        self.entities
    }

    /// Maximum radius the table holds aggregates for.
    pub fn r_max(&self) -> u32 {
        self.r_max
    }

    /// Signature width in bits.
    pub fn signature_bits(&self) -> usize {
        self.signature_bits
    }

    /// Number of pre-selected thresholds per row.
    pub fn num_thresholds(&self) -> usize {
        self.num_thresholds
    }

    #[inline]
    fn row_index(&self, entity: usize, r: u32) -> usize {
        assert!(
            r >= 1 && r <= self.r_max,
            "radius {r} outside [1, {}]",
            self.r_max
        );
        entity * self.r_max as usize + (r - 1) as usize
    }

    /// The aggregate row of `entity` at radius `r` (1-based).
    ///
    /// # Panics
    /// Panics if `r` is 0 or exceeds `r_max`, or `entity` is out of range.
    #[inline]
    pub fn row(&self, entity: usize, r: u32) -> AggregateRef<'_> {
        let row = self.row_index(entity, r);
        let words = self.signature_bits.div_ceil(64);
        AggregateRef {
            keyword_signature: SignatureRef::new(
                self.signature_bits,
                &self.signatures[row * words..(row + 1) * words],
            ),
            support_upper_bound: self.supports[row],
            score_upper_bounds: &self.scores
                [row * self.num_thresholds..(row + 1) * self.num_thresholds],
            region_size: self.region_sizes[row],
        }
    }

    /// The score upper bound `σ_z` of `entity` at radius `r` for threshold
    /// index `z` — the single-value hot-path lookup of index traversal.
    #[inline]
    pub fn score(&self, entity: usize, r: u32, z: usize) -> f64 {
        debug_assert!(z < self.num_thresholds);
        self.scores[self.row_index(entity, r) * self.num_thresholds + z]
    }

    /// Overwrites the row of `entity` at radius `r` from an owned aggregate.
    ///
    /// # Panics
    /// Panics if the aggregate's signature width or threshold count does not
    /// match the table.
    pub fn set_row(&mut self, entity: usize, r: u32, agg: &RadiusAggregate) {
        assert_eq!(
            agg.keyword_signature.num_bits(),
            self.signature_bits,
            "signature width mismatch"
        );
        assert_eq!(
            agg.score_upper_bounds.len(),
            self.num_thresholds,
            "threshold count mismatch"
        );
        let row = self.row_index(entity, r);
        let words = self.signature_bits.div_ceil(64);
        self.signatures.to_mut()[row * words..(row + 1) * words]
            .copy_from_slice(agg.keyword_signature.words());
        self.supports.to_mut()[row] = agg.support_upper_bound;
        self.scores.to_mut()[row * self.num_thresholds..(row + 1) * self.num_thresholds]
            .copy_from_slice(&agg.score_upper_bounds);
        self.region_sizes.to_mut()[row] = agg.region_size;
    }

    /// Overwrites every radius row of `entity` at once (`rows[r-1]` holds
    /// radius `r`).
    ///
    /// # Panics
    /// Panics if `rows` does not hold exactly `r_max` aggregates.
    pub fn set_entity(&mut self, entity: usize, rows: &[RadiusAggregate]) {
        assert_eq!(rows.len(), self.r_max as usize, "one aggregate per radius");
        for (i, agg) in rows.iter().enumerate() {
            self.set_row(entity, (i + 1) as u32, agg);
        }
    }

    /// Rebuilds the owned signature of one row (diagnostics; the hot paths
    /// use the borrowed view from [`AggregateTable::row`]).
    pub fn signature(&self, entity: usize, r: u32) -> BitVector {
        self.row(entity, r).keyword_signature.to_owned_sig()
    }

    /// Splits the table into disjoint mutable chunks of
    /// `entities_per_chunk` consecutive entities each (the last chunk may be
    /// shorter). Every chunk borrows its own slice of the four flat arrays,
    /// so the pre-computation's work-stealing workers scatter finished rows
    /// **in place** — concurrently, without locks around the table and
    /// without any per-worker result buffering — while the borrow checker
    /// still proves the writes disjoint.
    ///
    /// # Panics
    /// Panics if `entities_per_chunk` is zero.
    pub fn chunks_mut(&mut self, entities_per_chunk: usize) -> Vec<TableChunkMut<'_>> {
        self.chunks_mut_with_base(entities_per_chunk, 0)
    }

    /// [`chunks_mut`](AggregateTable::chunks_mut) for a table that holds a
    /// shard's slice of a larger entity space: chunk `first_entity` ids are
    /// offset by `base_entity` (the shard's first global entity), so workers
    /// writing through a per-shard table still see global ids.
    ///
    /// # Panics
    /// Panics if `entities_per_chunk` is zero.
    pub fn chunks_mut_with_base(
        &mut self,
        entities_per_chunk: usize,
        base_entity: usize,
    ) -> Vec<TableChunkMut<'_>> {
        assert!(
            entities_per_chunk > 0,
            "chunks must hold at least one entity"
        );
        let r_max = self.r_max as usize;
        let words = self.signature_bits.div_ceil(64);
        let m = self.num_thresholds;
        let rows_per_chunk = entities_per_chunk * r_max;
        self.signatures
            .to_mut()
            .chunks_mut(rows_per_chunk * words)
            .zip(self.supports.to_mut().chunks_mut(rows_per_chunk))
            .zip(self.scores.to_mut().chunks_mut(rows_per_chunk * m))
            .zip(self.region_sizes.to_mut().chunks_mut(rows_per_chunk))
            .enumerate()
            .map(
                |(i, (((signatures, supports), scores), region_sizes))| TableChunkMut {
                    first_entity: base_entity + i * entities_per_chunk,
                    r_max,
                    words,
                    num_thresholds: m,
                    signatures,
                    supports,
                    scores,
                    region_sizes,
                },
            )
            .collect()
    }

    /// Concatenates per-shard tables (each covering a consecutive entity
    /// range, in order) into one table over the union of their entities —
    /// the freeze step of the sharded offline build. Column arrays are
    /// copied verbatim, so the stitched table is bit-identical to one built
    /// monolithically.
    ///
    /// Errors when no parts are given or the parts disagree on `r_max`,
    /// signature width or threshold count.
    pub fn stitch(parts: &[AggregateTable]) -> Result<AggregateTable, String> {
        let first = parts.first().ok_or("cannot stitch zero shard tables")?;
        let (r_max, bits, m) = (first.r_max, first.signature_bits, first.num_thresholds);
        let entities: usize = parts.iter().map(|p| p.entities).sum();
        let words = bits.div_ceil(64);
        let rows = entities * r_max as usize;
        let mut signatures = Vec::with_capacity(rows * words);
        let mut supports = Vec::with_capacity(rows);
        let mut scores = Vec::with_capacity(rows * m);
        let mut region_sizes = Vec::with_capacity(rows);
        for part in parts {
            if part.r_max != r_max || part.signature_bits != bits || part.num_thresholds != m {
                return Err("shard tables disagree on aggregate dimensions".to_string());
            }
            signatures.extend_from_slice(part.raw_signatures());
            supports.extend_from_slice(part.raw_supports());
            scores.extend_from_slice(part.raw_scores());
            region_sizes.extend_from_slice(part.raw_region_sizes());
        }
        AggregateTable::from_raw(
            entities,
            r_max,
            bits,
            m,
            signatures,
            supports,
            scores,
            region_sizes,
        )
    }

    /// Splits the table into disjoint mutable chunks covering the given
    /// ascending, non-overlapping `[start, end)` entity ranges (gaps between
    /// ranges are simply not handed out). This is the parallel maintenance
    /// analogue of [`AggregateTable::chunks_mut`]: the streaming refresh
    /// partitions its *sorted* affected-vertex list into per-worker spans and
    /// the borrow checker proves the concurrent scatter writes disjoint.
    ///
    /// # Panics
    /// Panics if the ranges are out of order, overlapping or out of bounds.
    pub fn ranges_mut(&mut self, ranges: &[(usize, usize)]) -> Vec<TableChunkMut<'_>> {
        let r_max = self.r_max as usize;
        let words = self.signature_bits.div_ceil(64);
        let m = self.num_thresholds;
        let mut sig = self.signatures.to_mut().as_mut_slice();
        let mut sup = self.supports.to_mut().as_mut_slice();
        let mut sco = self.scores.to_mut().as_mut_slice();
        let mut reg = self.region_sizes.to_mut().as_mut_slice();
        let mut out = Vec::with_capacity(ranges.len());
        let mut consumed = 0usize;
        for &(start, end) in ranges {
            assert!(
                start >= consumed && end >= start && end <= self.entities,
                "entity ranges must be ascending, disjoint and in bounds"
            );
            let gap = (start - consumed) * r_max;
            let take = (end - start) * r_max;
            fn split_rows<'s, T>(slice: &mut &'s mut [T], gap: usize, take: usize) -> &'s mut [T] {
                let rest = std::mem::take(slice);
                let (_, rest) = rest.split_at_mut(gap);
                let (chunk, rest) = rest.split_at_mut(take);
                *slice = rest;
                chunk
            }
            out.push(TableChunkMut {
                first_entity: start,
                r_max,
                words,
                num_thresholds: m,
                signatures: split_rows(&mut sig, gap * words, take * words),
                supports: split_rows(&mut sup, gap, take),
                scores: split_rows(&mut sco, gap * m, take * m),
                region_sizes: split_rows(&mut reg, gap, take),
            });
            consumed = end;
        }
        out
    }

    /// A single-entity mutable chunk view (the incremental-maintenance
    /// writer; the bulk path uses [`AggregateTable::chunks_mut`]).
    ///
    /// # Panics
    /// Panics if `entity` is out of range.
    pub fn entity_mut(&mut self, entity: usize) -> TableChunkMut<'_> {
        assert!(entity < self.entities, "entity {entity} out of range");
        let r_max = self.r_max as usize;
        let words = self.signature_bits.div_ceil(64);
        let m = self.num_thresholds;
        let rows = entity * r_max..(entity + 1) * r_max;
        TableChunkMut {
            first_entity: entity,
            r_max,
            words,
            num_thresholds: m,
            signatures: &mut self.signatures.to_mut()[rows.start * words..rows.end * words],
            supports: &mut self.supports.to_mut()[rows.clone()],
            scores: &mut self.scores.to_mut()[rows.start * m..rows.end * m],
            region_sizes: &mut self.region_sizes.to_mut()[rows],
        }
    }

    /// Raw signature words (the snapshot writer's view).
    pub fn raw_signatures(&self) -> &[u64] {
        &self.signatures
    }

    /// Raw support bounds.
    pub fn raw_supports(&self) -> &[u32] {
        &self.supports
    }

    /// Raw score bounds.
    pub fn raw_scores(&self) -> &[f64] {
        &self.scores
    }

    /// Raw region sizes.
    pub fn raw_region_sizes(&self) -> &[u32] {
        &self.region_sizes
    }

    /// Returns `true` if any column array is still a zero-copy view into a
    /// loaded snapshot region (i.e. the table has not been copied-on-write).
    pub fn is_mapped(&self) -> bool {
        self.signatures.is_mapped()
            || self.supports.is_mapped()
            || self.scores.is_mapped()
            || self.region_sizes.is_mapped()
    }

    /// FNV-1a fingerprint of the *structural* content — dimensions,
    /// signature words, support bounds and region sizes, everything except
    /// the float scores. Two builds that agree structurally bit-for-bit
    /// (the engine-vs-reference equivalence contract; scores are compared
    /// separately with [`AggregateTable::max_score_delta`] because their
    /// summation order may differ) produce equal fingerprints.
    pub fn structural_fingerprint(&self) -> u64 {
        use icde_graph::snapshot::{fnv1a, fnv1a_extend};
        let mut h = fnv1a(b"icde-aggregate-structure-v1");
        let mut word = |v: u64| h = fnv1a_extend(h, &v.to_le_bytes());
        word(self.entities as u64);
        word(u64::from(self.r_max));
        word(self.signature_bits as u64);
        word(self.num_thresholds as u64);
        for &w in self.signatures.iter() {
            word(w);
        }
        for &s in self.supports.iter() {
            word(u64::from(s));
        }
        for &s in self.region_sizes.iter() {
            word(u64::from(s));
        }
        h
    }

    /// The largest element-wise absolute difference between this table's
    /// score bounds and another's (`+∞` when the tables' shapes differ).
    pub fn max_score_delta(&self, other: &AggregateTable) -> f64 {
        if self.scores.len() != other.scores.len() {
            return f64::INFINITY;
        }
        self.scores
            .iter()
            .zip(other.scores.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// One disjoint chunk of consecutive entities of an [`AggregateTable`],
/// produced by [`AggregateTable::chunks_mut`]. A pre-computation worker that
/// has claimed the chunk writes each entity's rows through
/// [`row_mut`](TableChunkMut::row_mut) — no other thread can alias them.
#[derive(Debug)]
pub struct TableChunkMut<'a> {
    first_entity: usize,
    r_max: usize,
    words: usize,
    num_thresholds: usize,
    signatures: &'a mut [u64],
    supports: &'a mut [u32],
    scores: &'a mut [f64],
    region_sizes: &'a mut [u32],
}

/// Mutable view of one `(entity, radius)` row: the four column slots a
/// pre-computation worker fills in place.
#[derive(Debug)]
pub struct AggregateRowMut<'a> {
    /// The `⌈signature_bits/64⌉` signature words.
    pub signature: &'a mut [u64],
    /// `ub_sup_r`.
    pub support_upper_bound: &'a mut u32,
    /// `σ_z` per pre-selected threshold.
    pub score_upper_bounds: &'a mut [f64],
    /// Number of vertices in the region.
    pub region_size: &'a mut u32,
}

impl TableChunkMut<'_> {
    /// Global id of the first entity in this chunk.
    pub fn first_entity(&self) -> usize {
        self.first_entity
    }

    /// Number of entities the chunk covers.
    pub fn len(&self) -> usize {
        self.supports.len() / self.r_max
    }

    /// Returns `true` if the chunk covers no entities.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// The mutable row of the chunk-local entity `local` (0-based within the
    /// chunk) at radius `r` (1-based).
    ///
    /// # Panics
    /// Panics if `local` or `r` is out of range.
    pub fn row_mut(&mut self, local: usize, r: u32) -> AggregateRowMut<'_> {
        assert!(
            r >= 1 && r as usize <= self.r_max,
            "radius {r} outside [1, {}]",
            self.r_max
        );
        let row = local * self.r_max + (r - 1) as usize;
        AggregateRowMut {
            signature: &mut self.signatures[row * self.words..(row + 1) * self.words],
            support_upper_bound: &mut self.supports[row],
            score_upper_bounds: &mut self.scores
                [row * self.num_thresholds..(row + 1) * self.num_thresholds],
            region_size: &mut self.region_sizes[row],
        }
    }
}

/// Publish shadow for one [`AggregateTable`] whose rows are mutated entity
/// by entity between snapshot publishes (the streaming maintainer's vertex
/// and node tables): one [`SectionShadow`] per column array, all marked with
/// the same dirty-entity set. See [`SectionShadow`] for the double-buffer
/// replay protocol.
#[derive(Debug)]
pub(crate) struct TableShadow {
    signatures: SectionShadow<u64>,
    supports: SectionShadow<u32>,
    scores: SectionShadow<f64>,
    region_sizes: SectionShadow<u32>,
}

impl TableShadow {
    /// A shadow matching `table`'s row geometry (one logical row = one
    /// entity = all its `r_max` radius rows).
    pub(crate) fn new(table: &AggregateTable) -> Self {
        let r_max = table.r_max as usize;
        let words = table.signature_bits.div_ceil(64);
        let m = table.num_thresholds;
        TableShadow {
            signatures: SectionShadow::new((r_max * words).max(1)),
            supports: SectionShadow::new(r_max.max(1)),
            scores: SectionShadow::new((r_max * m).max(1)),
            region_sizes: SectionShadow::new(r_max.max(1)),
        }
    }

    /// Records the entities whose rows were rewritten since the last publish.
    pub(crate) fn mark_entities(&mut self, entities: &[u32]) {
        self.signatures.mark_rows(entities);
        self.supports.mark_rows(entities);
        self.scores.mark_rows(entities);
        self.region_sizes.mark_rows(entities);
    }

    /// Invalidates both buffers (wholesale rewrite, e.g. a repack).
    pub(crate) fn mark_all(&mut self) {
        self.signatures.mark_all();
        self.supports.mark_all();
        self.scores.mark_all();
        self.region_sizes.mark_all();
    }

    /// Syncs both double-buffer slots with `table` so the first publishes
    /// after construction replay dirty rows instead of full-copying.
    pub(crate) fn prime(&mut self, table: &AggregateTable) {
        self.signatures.prime(table.raw_signatures());
        self.supports.prime(table.raw_supports());
        self.scores.prime(table.raw_scores());
        self.region_sizes.prime(table.raw_region_sizes());
    }

    /// Builds a structurally-shared snapshot copy of `table`: untouched rows
    /// alias the shadow buffers, dirty rows are replayed from `table`.
    pub(crate) fn publish(&mut self, table: &AggregateTable) -> AggregateTable {
        AggregateTable {
            entities: table.entities,
            r_max: table.r_max,
            signature_bits: table.signature_bits,
            num_thresholds: table.num_thresholds,
            signatures: self.signatures.publish(table.raw_signatures()),
            supports: self.supports.publish(table.raw_supports()),
            scores: self.scores.publish(table.raw_scores()),
            region_sizes: self.region_sizes.publish(table.raw_region_sizes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::KeywordSet;

    fn sample_aggregate(support: u32, scores: &[f64], kw: u32) -> RadiusAggregate {
        RadiusAggregate {
            keyword_signature: BitVector::from_keywords(&KeywordSet::from_ids([kw]), 128),
            support_upper_bound: support,
            score_upper_bounds: scores.to_vec(),
            region_size: support + 1,
        }
    }

    #[test]
    fn rows_roundtrip_through_the_flat_arrays() {
        let mut table = AggregateTable::new(3, 2, 128, 2);
        let agg = sample_aggregate(7, &[1.5, 0.5], 3);
        table.set_row(1, 2, &agg);
        let row = table.row(1, 2);
        assert_eq!(row.support_upper_bound, 7);
        assert_eq!(row.score_upper_bounds, &[1.5, 0.5]);
        assert_eq!(row.region_size, 8);
        assert_eq!(row.keyword_signature, agg.keyword_signature);
        assert_eq!(row.to_owned_aggregate(), agg);
        // untouched rows stay zeroed
        assert_eq!(table.row(1, 1).support_upper_bound, 0);
        assert_eq!(table.score(1, 2, 0), 1.5);
        assert_eq!(table.score(1, 2, 1), 0.5);
    }

    #[test]
    fn set_entity_writes_every_radius() {
        let mut table = AggregateTable::new(2, 3, 64, 1);
        let rows: Vec<RadiusAggregate> = (1..=3u32)
            .map(|r| RadiusAggregate {
                keyword_signature: BitVector::from_keywords(&KeywordSet::from_ids([r]), 64),
                support_upper_bound: r,
                score_upper_bounds: vec![f64::from(r)],
                region_size: 10 * r,
            })
            .collect();
        table.set_entity(1, &rows);
        for r in 1..=3u32 {
            let row = table.row(1, r);
            assert_eq!(row.support_upper_bound, r);
            assert_eq!(row.region_size, 10 * r);
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn out_of_range_radius_panics() {
        let table = AggregateTable::new(1, 2, 64, 1);
        let _ = table.row(0, 3);
    }

    #[test]
    fn chunked_writers_cover_the_whole_table_disjointly() {
        let entities = 7usize;
        let mut table = AggregateTable::new(entities, 2, 128, 3);
        let mut chunks = table.chunks_mut(3);
        // 7 entities at 3 per chunk: 3 + 3 + 1
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(TableChunkMut::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert_eq!(
            chunks
                .iter()
                .map(TableChunkMut::first_entity)
                .collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        assert!(!chunks[0].is_empty());
        for chunk in &mut chunks {
            let first = chunk.first_entity();
            for local in 0..chunk.len() {
                for r in 1..=2u32 {
                    let row = chunk.row_mut(local, r);
                    let entity = (first + local) as u32;
                    row.signature.fill(u64::from(entity * 10 + r));
                    *row.support_upper_bound = entity * 10 + r;
                    row.score_upper_bounds.fill(f64::from(entity * 10 + r));
                    *row.region_size = entity;
                }
            }
        }
        drop(chunks);
        for entity in 0..entities {
            for r in 1..=2u32 {
                let expected = entity as u32 * 10 + r;
                let row = table.row(entity, r);
                assert_eq!(row.support_upper_bound, expected);
                assert_eq!(row.region_size, entity as u32);
                assert!(row
                    .keyword_signature
                    .words()
                    .iter()
                    .all(|w| *w == u64::from(expected)));
                assert!(row
                    .score_upper_bounds
                    .iter()
                    .all(|s| *s == f64::from(expected)));
            }
        }
    }

    #[test]
    fn stitched_shard_tables_are_bit_identical_to_the_monolithic_build() {
        let entities = 7usize;
        let fill = |table: &mut AggregateTable, base: usize| {
            for local in 0..table.entities() {
                let entity = base + local;
                for r in 1..=2u32 {
                    table.set_row(
                        local,
                        r,
                        &sample_aggregate(entity as u32 * 10 + r, &[f64::from(r), 0.5], 3),
                    );
                }
            }
        };
        let mut whole = AggregateTable::new(entities, 2, 128, 2);
        fill(&mut whole, 0);
        // shards 3 + 3 + 1, each filled through shard-local entity ids
        let mut parts = Vec::new();
        for (base, len) in [(0usize, 3usize), (3, 3), (6, 1)] {
            let mut part = AggregateTable::new(len, 2, 128, 2);
            fill(&mut part, base);
            parts.push(part);
        }
        let stitched = AggregateTable::stitch(&parts).unwrap();
        assert_eq!(stitched, whole);
        assert_eq!(
            stitched.structural_fingerprint(),
            whole.structural_fingerprint()
        );
        assert_eq!(stitched.max_score_delta(&whole), 0.0);
    }

    #[test]
    fn stitch_rejects_mismatched_dimensions_and_empty_input() {
        assert!(AggregateTable::stitch(&[]).is_err());
        let a = AggregateTable::new(2, 2, 128, 2);
        let b = AggregateTable::new(2, 3, 128, 2);
        assert!(AggregateTable::stitch(&[a, b]).is_err());
    }

    #[test]
    fn based_chunks_report_global_entity_ids() {
        let mut shard = AggregateTable::new(5, 2, 64, 1);
        let chunks = shard.chunks_mut_with_base(2, 100);
        assert_eq!(
            chunks
                .iter()
                .map(TableChunkMut::first_entity)
                .collect::<Vec<_>>(),
            vec![100, 102, 104]
        );
        assert_eq!(
            chunks.iter().map(TableChunkMut::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn from_raw_validates_lengths() {
        let table = AggregateTable::new(2, 2, 128, 3);
        let ok = AggregateTable::from_raw(
            2,
            2,
            128,
            3,
            table.raw_signatures().to_vec(),
            table.raw_supports().to_vec(),
            table.raw_scores().to_vec(),
            table.raw_region_sizes().to_vec(),
        );
        assert_eq!(ok.unwrap(), table);
        let bad = AggregateTable::from_raw(
            3, // wrong entity count for the same arrays
            2,
            128,
            3,
            table.raw_signatures().to_vec(),
            table.raw_supports().to_vec(),
            table.raw_scores().to_vec(),
            table.raw_region_sizes().to_vec(),
        );
        assert!(bad.is_err());
    }
}
