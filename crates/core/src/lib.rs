//! # icde-core — TopL-ICDE and DTopL-ICDE query processing
//!
//! The paper's contribution, layered over the `icde-graph`, `icde-truss` and
//! `icde-influence` substrates:
//!
//! * [`query`] — online query parameters (`L`, `θ`, `k`, `r`, `Q`) with
//!   validation,
//! * [`seed`] — seed-community extraction and validation (Definition 2),
//! * [`pruning`] — the keyword / support / radius / influential-score pruning
//!   rules (Lemmas 1–7) and the diversity-score pruning rule (Lemma 9),
//! * [`precompute`] — offline pre-computation of per-vertex, per-radius
//!   aggregates (Algorithm 2),
//! * [`aggregate`] — the flattened (struct-of-arrays) aggregate tables both
//!   the pre-computed data and the index node bounds live in,
//! * [`index`] — the hierarchical tree index `I` over the pre-computed data
//!   (Section V-B), stored flat (shared item pool + SoA bounds),
//! * [`snapshot`] — binary snapshot persistence of the index (same
//!   container format as `icde_graph::snapshot`),
//! * [`topl`] — online TopL-ICDE processing by best-first index traversal
//!   (Algorithm 3),
//! * [`dtopl`] — DTopL-ICDE processing: the lazy greedy with diversity
//!   pruning (Algorithm 4), the unpruned greedy and the exact optimal
//!   baseline,
//! * [`baseline`] — competitor methods used in the evaluation (brute force,
//!   ATindex, k-core),
//! * [`stats`] — pruning-power instrumentation backing the ablation study,
//! * [`serving`] — the concurrent query-serving runtime: worker pool over a
//!   hot-swappable snapshot with a canonicalised query LRU,
//! * [`streaming`] — D-TopL streaming maintenance: edge-update batches
//!   applied as delta-overlay patches with affected-ball aggregate refresh,
//!   republished through the serving runtime.

pub mod aggregate;
pub mod baseline;
pub mod dtopl;
pub mod error;
pub mod index;
pub mod maintenance;
pub mod persist;
pub mod precompute;
pub mod progressive;
pub mod pruning;
pub mod query;
pub mod seed;
pub mod serving;
pub mod snapshot;
pub mod stats;
pub mod streaming;
pub mod topl;

pub use aggregate::{AggregateRef, AggregateTable};
pub use dtopl::{DTopLAnswer, DTopLProcessor, DTopLQuery, DTopLStrategy};
pub use error::CoreError;
pub use index::{CommunityIndex, IndexBuilder, IndexPlacement, NodeRef};
pub use precompute::{EngineStats, MaintenanceArena, PrecomputeConfig, PrecomputedData, ShardPlan};
pub use query::TopLQuery;
pub use seed::SeedCommunity;
pub use serving::{
    EpochLatency, LatencyHistogram, ServedAnswer, ServingConfig, ServingError, ServingRuntime,
    ServingSnapshot, ServingStats,
};
pub use stats::PruningStats;
pub use streaming::{EdgeUpdate, MaintainerStats, StreamStats, StreamingMaintainer, UpdateFeed};
pub use topl::{TopLAnswer, TopLProcessor};
