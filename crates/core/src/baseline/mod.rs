//! Competitor methods used in the paper's evaluation (Section VIII-A).
//!
//! * [`bruteforce`] — index-free, pruning-free TopL-ICDE: refine every vertex
//!   as a candidate centre. Slow but exact; the ground truth the tests
//!   compare the indexed processor against.
//! * [`atindex`] — the ATindex competitor: offline truss decomposition
//!   (trussness of vertices/edges), online trussness filtering followed by
//!   r-hop extraction, k-truss computation and scoring.
//! * [`kcore`] — the k-core community used by the Figure 5 case study.

pub mod atindex;
pub mod bruteforce;
pub mod kcore;

pub use atindex::ATIndex;
pub use bruteforce::brute_force_topl;
pub use kcore::kcore_community;
