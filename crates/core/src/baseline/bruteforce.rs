//! Brute-force TopL-ICDE: the "straightforward method" from Section II-C.
//!
//! Every vertex is treated as a candidate centre, its maximal seed community
//! is extracted (Definition 2) and scored exactly. No index, no bounds, no
//! pruning. The output is therefore the exact answer, which makes this module
//! the correctness oracle for the indexed processor and the slowest point of
//! comparison for the benchmarks.

use crate::query::TopLQuery;
use crate::seed::{extract_seed_community, SeedCommunity};
use crate::stats::PruningStats;
use crate::topl::TopLAnswer;
use icde_graph::SocialNetwork;
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use std::time::Instant;

/// Answers a TopL-ICDE query by exhaustively refining every vertex.
pub fn brute_force_topl(g: &SocialNetwork, query: &TopLQuery) -> TopLAnswer {
    let start = Instant::now();
    let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta: query.theta });
    let mut stats = PruningStats::new();
    let mut communities: Vec<SeedCommunity> = Vec::new();

    for center in g.vertices() {
        match extract_seed_community(g, center, query.support, query.radius, &query.keywords) {
            None => stats.candidates_without_community += 1,
            Some(vertices) => {
                stats.candidates_refined += 1;
                // Skip duplicates of an already-collected community.
                if let Some(existing) = communities.iter().position(|c| c.vertices == vertices) {
                    let _ = existing;
                    continue;
                }
                let influenced = evaluator.influenced_community(&vertices);
                communities.push(SeedCommunity {
                    center,
                    influential_score: influenced.influential_score(),
                    influenced_size: influenced.len(),
                    vertices,
                });
            }
        }
    }

    communities.sort_by(|a, b| {
        b.influential_score
            .partial_cmp(&a.influential_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    communities.truncate(query.l);
    TopLAnswer {
        communities,
        stats,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::precompute::PrecomputeConfig;
    use crate::seed::is_valid_seed_community;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn graph(kind: DatasetKind, n: usize, seed: u64) -> SocialNetwork {
        DatasetSpec::new(kind, n, seed)
            .with_keyword_domain(10)
            .generate()
    }

    #[test]
    fn brute_force_produces_valid_answers() {
        let g = graph(DatasetKind::Uniform, 150, 3);
        let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 4);
        let answer = brute_force_topl(&g, &q);
        for c in &answer.communities {
            assert!(is_valid_seed_community(
                &g,
                &c.vertices,
                c.center,
                q.support,
                q.radius,
                &q.keywords
            ));
        }
        // descending scores
        for w in answer.communities.windows(2) {
            assert!(w[0].influential_score + 1e-9 >= w[1].influential_score);
        }
    }

    #[test]
    fn indexed_processor_matches_brute_force() {
        // The headline correctness statement: the indexed, pruned Algorithm 3
        // returns exactly the same top-L scores as exhaustive search.
        for (kind, seed) in [
            (DatasetKind::Uniform, 7u64),
            (DatasetKind::Gaussian, 8),
            (DatasetKind::Zipf, 9),
        ] {
            let g = graph(kind, 180, seed);
            let index = IndexBuilder::new(PrecomputeConfig {
                parallel: false,
                ..Default::default()
            })
            .with_leaf_capacity(8)
            .build(&g);
            let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
            let exact = brute_force_topl(&g, &q);
            let indexed = TopLProcessor::new(&g, &index).run(&q).unwrap();
            let exact_scores: Vec<f64> = exact
                .communities
                .iter()
                .map(|c| (c.influential_score * 1e9).round())
                .collect();
            let indexed_scores: Vec<f64> = indexed
                .communities
                .iter()
                .map(|c| (c.influential_score * 1e9).round())
                .collect();
            assert_eq!(exact_scores, indexed_scores, "{kind:?}");
        }
    }

    #[test]
    fn impossible_query_returns_empty() {
        let g = graph(DatasetKind::Uniform, 60, 4);
        let q = TopLQuery::new(KeywordSet::from_ids([999]), 3, 2, 0.2, 4);
        let answer = brute_force_topl(&g, &q);
        assert!(answer.communities.is_empty());
        assert_eq!(answer.stats.candidates_refined, 0);
    }
}
