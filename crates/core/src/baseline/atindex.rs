//! The ATindex competitor (Section VIII-A).
//!
//! ATindex adapts the state-of-the-art (k, d)-truss community-search index:
//! it *offline* computes and stores the trussness of every edge and vertex;
//! *online* it filters out vertices whose trussness is below `k`, extracts
//! the r-hop subgraph around each surviving vertex (restricted to vertices
//! satisfying the keyword constraint), computes the maximal k-truss inside
//! it, scores the resulting communities and returns the `L` best.
//!
//! Compared to the paper's approach, ATindex lacks keyword signatures,
//! support upper bounds per radius and — crucially — influential-score upper
//! bounds, so it must score *every* surviving candidate instead of stopping
//! early. That difference is what Figure 2 measures.

use crate::query::TopLQuery;
use crate::seed::{extract_seed_community, SeedCommunity};
use crate::stats::PruningStats;
use crate::topl::TopLAnswer;
use icde_graph::SocialNetwork;
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use icde_truss::decomposition::{truss_decomposition, TrussDecomposition};
use std::time::Instant;

/// Offline portion of the ATindex baseline: the truss decomposition of the
/// data graph.
#[derive(Debug, Clone)]
pub struct ATIndex {
    decomposition: TrussDecomposition,
}

impl ATIndex {
    /// Builds the ATindex offline structure (truss decomposition).
    pub fn build(g: &SocialNetwork) -> Self {
        ATIndex {
            decomposition: truss_decomposition(g),
        }
    }

    /// The trussness of a vertex (maximum trussness over incident edges).
    pub fn vertex_trussness(&self, v: icde_graph::VertexId) -> u32 {
        self.decomposition.vertex(v)
    }

    /// Answers a TopL-ICDE query with the ATindex online procedure.
    pub fn run(&self, g: &SocialNetwork, query: &TopLQuery) -> TopLAnswer {
        let start = Instant::now();
        let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta: query.theta });
        let mut stats = PruningStats::new();
        let mut communities: Vec<SeedCommunity> = Vec::new();

        for center in g.vertices() {
            // Online trussness filter: a centre whose best incident edge
            // trussness is below k cannot be part of any k-truss.
            if self.decomposition.vertex(center) < query.support {
                stats.candidate_support_pruned += 1;
                continue;
            }
            match extract_seed_community(g, center, query.support, query.radius, &query.keywords) {
                None => stats.candidates_without_community += 1,
                Some(vertices) => {
                    stats.candidates_refined += 1;
                    if communities.iter().any(|c| c.vertices == vertices) {
                        continue;
                    }
                    let influenced = evaluator.influenced_community(&vertices);
                    communities.push(SeedCommunity {
                        center,
                        influential_score: influenced.influential_score(),
                        influenced_size: influenced.len(),
                        vertices,
                    });
                }
            }
        }

        communities.sort_by(|a, b| {
            b.influential_score
                .partial_cmp(&a.influential_score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        communities.truncate(query.l);
        TopLAnswer {
            communities,
            stats,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::bruteforce::brute_force_topl;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    fn graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 160, 13)
            .with_keyword_domain(10)
            .generate()
    }

    #[test]
    fn atindex_matches_brute_force_scores() {
        let g = graph();
        let at = ATIndex::build(&g);
        let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let exact = brute_force_topl(&g, &q);
        let answer = at.run(&g, &q);
        let round = |xs: &TopLAnswer| -> Vec<f64> {
            xs.communities
                .iter()
                .map(|c| (c.influential_score * 1e9).round())
                .collect()
        };
        assert_eq!(round(&exact), round(&answer));
    }

    #[test]
    fn trussness_filter_skips_low_truss_centres() {
        let g = graph();
        let at = ATIndex::build(&g);
        // demand an unusually dense truss so that the filter has something to do
        let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 5, 2, 0.2, 5);
        let answer = at.run(&g, &q);
        assert!(
            answer.stats.candidate_support_pruned > 0,
            "some vertices should fail the trussness filter at k=5"
        );
        // every returned community still respects the seed-community
        // constraints at k = 5
        for c in &answer.communities {
            assert!(crate::seed::is_valid_seed_community(
                &g,
                &c.vertices,
                c.center,
                5,
                q.radius,
                &q.keywords
            ));
        }
    }

    #[test]
    fn vertex_trussness_accessor() {
        let g = graph();
        let at = ATIndex::build(&g);
        let any_vertex = icde_graph::VertexId(0);
        assert!(at.vertex_trussness(any_vertex) >= 2);
    }
}
