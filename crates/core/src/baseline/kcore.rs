//! k-core community baseline for the Figure 5 case study.
//!
//! The paper's case study compares the Top1-ICDE seed community against the
//! k-core community around the same centre vertex: the k-core tends to
//! include more seed users but, because it ignores triangle cohesion,
//! keywords and influence, its influenced community is smaller and its
//! influential score lower.

use icde_graph::{SocialNetwork, VertexId};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use icde_truss::kcore::maximal_kcore_containing;
use serde::{Deserialize, Serialize};

/// The k-core community around a centre vertex together with its influence
/// metrics (same fields the case study reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KCoreCommunity {
    /// The centre vertex the community was grown from.
    pub center: VertexId,
    /// Members of the connected k-core containing the centre.
    pub vertices: icde_graph::VertexSubset,
    /// Influential score `σ(g)` of the community under the given threshold.
    pub influential_score: f64,
    /// Size of the influenced community `g^Inf`.
    pub influenced_size: usize,
}

/// Extracts the connected k-core containing `center` and evaluates its
/// influence under threshold `theta`. Returns `None` when the centre's core
/// number is below `k`.
pub fn kcore_community(
    g: &SocialNetwork,
    center: VertexId,
    k: u32,
    theta: f64,
) -> Option<KCoreCommunity> {
    let vertices = maximal_kcore_containing(g, center, k)?;
    let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta });
    let influenced = evaluator.influenced_community(&vertices);
    Some(KCoreCommunity {
        center,
        influential_score: influenced.influential_score(),
        influenced_size: influenced.len(),
        vertices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::generators::{DatasetKind, DatasetSpec};

    #[test]
    fn kcore_community_has_consistent_metrics() {
        let g = DatasetSpec::new(DatasetKind::AmazonLike, 300, 5).generate();
        // find some centre that belongs to a 3-core
        let cores = icde_truss::kcore::core_numbers(&g);
        let center = g
            .vertices()
            .find(|v| cores[v.index()] >= 3)
            .expect("amazon-like graphs contain a 3-core");
        let community = kcore_community(&g, center, 3, 0.2).unwrap();
        assert!(community.vertices.contains(center));
        assert!(community.influenced_size >= community.vertices.len());
        assert!(community.influential_score >= community.vertices.len() as f64);
        // every member indeed has core number >= 3
        for v in community.vertices.iter() {
            assert!(cores[v.index()] >= 3);
        }
    }

    #[test]
    fn missing_core_returns_none() {
        let g = DatasetSpec::new(DatasetKind::Uniform, 100, 6).generate();
        let max_core = icde_truss::kcore::degeneracy(&g);
        assert!(kcore_community(&g, VertexId(0), max_core + 5, 0.2).is_none());
    }
}
