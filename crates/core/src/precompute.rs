//! Offline pre-computation (Algorithm 2).
//!
//! For every vertex `v_i` and every radius `r ∈ [1, r_max]`, the offline
//! phase computes three aggregates over the r-hop region `hop(v_i, r)`:
//!
//! * the OR-folded keyword signature `v_i.BV_r` (used by keyword pruning),
//! * the support upper bound `v_i.ub_sup_r` — the maximum *data-graph* edge
//!   support over the region's edges (used by support pruning),
//! * `m` influential-score upper bounds `σ_z(hop(v_i, r))`, one per
//!   pre-selected threshold `θ_z` (used by influential-score pruning): the
//!   score of the whole region over-estimates the score of any seed community
//!   extracted from it.
//!
//! # The engine
//!
//! The inner loop is built around four structural optimisations (each
//! verified against the in-tree [`reference_precompute_vertex`] path —
//! signatures, supports and region sizes bit-identical, every `σ_z` within
//! float-summation tolerance):
//!
//! 1. **One influence expansion per `(vertex, radius)`** instead of one per
//!    threshold: a single max-product Dijkstra truncated at
//!    `θ_min = min(thresholds)` settles the exact `cpp` of every vertex that
//!    clears *any* pre-selected threshold, and
//!    [`InfluenceEvaluator::multi_threshold_scores_into`] buckets the settled
//!    values into all `σ_z` in one deterministic drain.
//! 2. **Score-only expansion** — probabilities are read straight off the
//!    workspace; no `HashMap` (or anything else) is allocated per expansion.
//! 3. **Frontier-incremental radius aggregation** — the bounded BFS yields
//!    vertices in nondecreasing distance order, so radius `r`'s region is a
//!    prefix of the order buffer and only the *frontier* (distance exactly
//!    `r`) is new. Signatures are OR-folded from the per-graph flat
//!    [`SignatureTable`] for frontier vertices only; the support bound scans
//!    only edges incident to the frontier whose other endpoint is already in
//!    the region (an O(1) check against the epoch-stamped BFS distance
//!    array). Everything except the influence expansion is O(frontier), not
//!    O(region).
//! 4. **Work-stealing scheduler with in-place scatter** — workers claim
//!    fixed-size entity chunks off an atomic counter (hub-heavy chunks no
//!    longer straggle behind a static partition) and write finished rows
//!    directly into disjoint [`AggregateTable`] chunks
//!    ([`AggregateTable::chunks_mut`]); no per-worker result buffers, no
//!    sequential scatter pass. [`PrecomputeConfig::num_threads`] pins the
//!    worker count.
//!
//! Each worker owns two [`TraversalWorkspace`]s — one keeps the BFS distance
//! stamps valid across all radii while the other churns through the
//! influence expansions — plus the reused BFS-order and signature
//! accumulator buffers, so the steady-state hot path performs no heap
//! allocation at all.
//!
//! # Seed-community score bounds
//!
//! The region bound `σ_z(hop(v, r))` is sound but loose: it scores the whole
//! r-hop ball, while the online phase only ever realises a *seed community*
//! inside it. The offline phase therefore also stores, per `(v, r, θ_z)`,
//! the score of the keyword-**unconstrained** maximal seed community
//! `X_all(v; k = SEED_BOUND_SUPPORT, r)`
//! ([`crate::seed::extract_unconstrained_seed_community_with`]). Every
//! keyword-constrained seed community at the same centre with support
//! `k ≥ `[`SEED_BOUND_SUPPORT`] is a subgraph of `X_all` (the extraction
//! fixpoint is monotone in its starting set and antitone in `k`), and `σ` is
//! monotone in the seed set and antitone in `θ`, so
//! `σ_θz(X_all)` upper-bounds `σ_θ` of any such community for `θ ≥ θ_z`.
//! Centres with no `X_all` at all admit no community for any `k ≥ 3`; their
//! bound is stored as the negative [`NO_SEED_COMMUNITY`] sentinel and read
//! back as `-∞`. The progressive online kernel takes the min of this bound
//! and the region bound, which is what lets it refine tens of candidates
//! instead of tens of thousands.

use crate::aggregate::{AggregateRef, AggregateTable, TableChunkMut, TableShadow};
use crate::seed::extract_unconstrained_seed_community_with;
use icde_graph::snapshot::{FlatVec, SectionShadow};
use icde_graph::traversal::bfs_within_into;
use icde_graph::workspace::TraversalWorkspace;
use icde_graph::{
    BitVector, EdgeId, EdgeIdRemap, SignatureScratch, SignatureTable, SocialNetwork, VertexId,
    VertexSubset,
};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use icde_truss::support::edge_supports_global;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Truss support the seed-community score bounds are computed at. Bounds are
/// sound for any online query with `support >= SEED_BOUND_SUPPORT` (larger
/// support yields a smaller community); queries below it fall back to the
/// region bound alone.
pub const SEED_BOUND_SUPPORT: u32 = 3;

/// Stored stand-in for "no keyword-unconstrained seed community exists at
/// this centre" (no community exists for any `k ≥ `[`SEED_BOUND_SUPPORT`]
/// either, so the true bound is `-∞` — which JSON cannot represent).
/// [`PrecomputedData::seed_score_bound`] maps any negative stored value back
/// to `-∞`.
pub const NO_SEED_COMMUNITY: f64 = -1.0;

/// Configuration of the offline pre-computation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputeConfig {
    /// Maximum radius `r_max` to pre-compute aggregates for (queries may use
    /// any `r ≤ r_max`).
    pub r_max: u32,
    /// Pre-selected influence thresholds `θ_1 < θ_2 < ... < θ_m`; an online
    /// threshold `θ ∈ [θ_z, θ_{z+1})` uses `σ_z` as its score upper bound.
    pub thresholds: Vec<f64>,
    /// Width (in bits) of the keyword signatures.
    pub signature_bits: usize,
    /// Whether to spread the per-vertex work across worker threads.
    pub parallel: bool,
    /// Exact number of worker threads. `Some(n)` forces `n` workers
    /// regardless of `parallel` (`Some(1)` is the sequential build); `None`
    /// defers to `parallel` (`available_parallelism()` workers when set).
    ///
    /// A runtime knob, not data: neither the JSON nor the binary index
    /// format persists it (all loads yield `None`), so artifacts stay
    /// independent of the machine that built them.
    pub num_threads: Option<usize>,
    /// Number of contiguous vertex-id shards the offline build partitions
    /// the aggregate table into. `None` (and `Some(1)`) is the unsharded
    /// build: one table, one shared full-graph signature table. `Some(k)`
    /// with `k > 1` gives every shard its own table slice and every worker a
    /// sparse shard-local signature/workspace arena sized to the balls it
    /// actually touches, bounding per-worker memory by the shard's r_max
    /// ball cover instead of `n`. Output is bit-identical either way.
    ///
    /// A runtime knob like `num_threads`: never persisted, all loads yield
    /// `None`.
    pub num_shards: Option<usize>,
}

/// Hand-written so `num_threads` and `num_shards` never leak into persisted
/// artifacts (see their field docs); everything else serialises exactly as
/// the derive would.
impl Serialize for PrecomputeConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("r_max".to_string(), self.r_max.to_value()),
            ("thresholds".to_string(), self.thresholds.to_value()),
            ("signature_bits".to_string(), self.signature_bits.to_value()),
            ("parallel".to_string(), self.parallel.to_value()),
        ])
    }
}

impl Deserialize for PrecomputeConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(PrecomputeConfig {
            r_max: serde::__de_field(v, "PrecomputeConfig", "r_max")?,
            thresholds: serde::__de_field(v, "PrecomputeConfig", "thresholds")?,
            signature_bits: serde::__de_field(v, "PrecomputeConfig", "signature_bits")?,
            parallel: serde::__de_field(v, "PrecomputeConfig", "parallel")?,
            num_threads: None,
            num_shards: None,
        })
    }
}

impl Default for PrecomputeConfig {
    /// The paper's defaults: `r_max = 3`, thresholds `{0.1, 0.2, 0.3}`
    /// (Table III), 128-bit signatures.
    fn default() -> Self {
        PrecomputeConfig {
            r_max: 3,
            thresholds: vec![0.1, 0.2, 0.3],
            signature_bits: 128,
            parallel: true,
            num_threads: None,
            num_shards: None,
        }
    }
}

impl PrecomputeConfig {
    /// Creates a config with explicit `r_max` and thresholds (sorted and
    /// validated).
    ///
    /// # Panics
    /// Panics if `r_max == 0`, thresholds is empty, or any threshold is
    /// outside `[0, 1)`.
    pub fn new(r_max: u32, mut thresholds: Vec<f64>) -> Self {
        assert!(r_max >= 1, "r_max must be at least 1");
        assert!(!thresholds.is_empty(), "at least one threshold is required");
        assert!(
            thresholds.iter().all(|t| (0.0..1.0).contains(t)),
            "thresholds must lie in [0, 1)"
        );
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        PrecomputeConfig {
            r_max,
            thresholds,
            ..Default::default()
        }
    }

    /// Overrides the signature width.
    pub fn with_signature_bits(mut self, bits: usize) -> Self {
        self.signature_bits = bits;
        self
    }

    /// Enables or disables parallel pre-computation.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Pins the worker-thread count (see [`PrecomputeConfig::num_threads`]).
    pub fn with_num_threads(mut self, num_threads: Option<usize>) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Pins the shard count of the offline build (see
    /// [`PrecomputeConfig::num_shards`]).
    pub fn with_num_shards(mut self, num_shards: Option<usize>) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// The number of shards the offline build will actually use for an
    /// `n`-vertex graph: the pinned count clamped to `[1, n]`.
    pub fn shard_count(&self, n: usize) -> usize {
        match self.num_shards {
            Some(s) => s.clamp(1, n.max(1)),
            None => 1,
        }
    }

    /// The number of workers the offline build will actually use for an
    /// `n`-vertex graph.
    pub fn worker_count(&self, n: usize) -> usize {
        let requested = match self.num_threads {
            Some(t) => t.max(1),
            None if self.parallel => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            None => 1,
        };
        requested.min(n.max(1))
    }

    /// Index of the largest pre-selected threshold `θ_z ≤ θ`, or `None` if
    /// `θ` is below every pre-selected threshold (in which case no valid
    /// pre-computed upper bound exists and score pruning is disabled).
    pub fn threshold_index(&self, theta: f64) -> Option<usize> {
        let mut best = None;
        for (i, t) in self.thresholds.iter().enumerate() {
            if *t <= theta {
                best = Some(i);
            }
        }
        best
    }
}

/// A partition of the vertex-id space into contiguous shards. Shard `s`
/// owns the half-open id range [`ShardPlan::range`]`(s)`; the sharded
/// offline build gives each shard its own [`AggregateTable`] slice and
/// routes work-stealing chunk claims to a shard's home workers first, so a
/// worker's traversal scratch stays resident on one id range instead of
/// paging the whole graph in.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// `num_shards + 1` cumulative boundaries: shard `s` is
    /// `boundaries[s]..boundaries[s + 1]`.
    boundaries: Vec<usize>,
}

impl ShardPlan {
    /// An even contiguous split of `n` vertices into `shards` ranges (the
    /// first `n % shards` ranges hold one extra vertex). `shards` is clamped
    /// to `[1, n]` (an empty graph yields one empty shard).
    pub fn contiguous(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        let base = n / shards;
        let extra = n % shards;
        let mut boundaries = Vec::with_capacity(shards + 1);
        let mut at = 0;
        boundaries.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            boundaries.push(at);
        }
        ShardPlan { boundaries }
    }

    /// A plan from explicit interior boundaries over `n` vertices (the
    /// equivalence property tests place boundaries arbitrarily). Interior
    /// boundaries must be strictly increasing within `(0, n)`; duplicates or
    /// out-of-range values error.
    pub fn from_interior_boundaries(n: usize, interior: &[usize]) -> Result<Self, String> {
        let mut boundaries = Vec::with_capacity(interior.len() + 2);
        boundaries.push(0);
        for &b in interior {
            if b == 0 || b >= n {
                return Err(format!("shard boundary {b} outside (0, {n})"));
            }
            if *boundaries.last().expect("non-empty") >= b {
                return Err("shard boundaries must be strictly increasing".to_string());
            }
            boundaries.push(b);
        }
        boundaries.push(n);
        Ok(ShardPlan { boundaries })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The vertex-id range shard `s` owns.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.boundaries[s]..self.boundaries[s + 1]
    }
}

/// Telemetry of one offline build: where the wall time went and how many
/// bytes of traversal/signature scratch each worker actually kept resident,
/// against the dense projection a pre-sharding build would have pinned. The
/// bench asserts `measured_scratch_bytes() × 4 ≤ naive_scratch_bytes` at
/// scale; nothing here affects the computed data.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker threads the build ran with.
    pub workers: usize,
    /// Shards the aggregate table was partitioned into (1 = unsharded).
    pub shards: usize,
    /// Wall time of the global edge-support pass.
    pub support_phase_secs: f64,
    /// Wall time of the aggregate-table pass (incl. shard stitch).
    pub table_phase_secs: f64,
    /// Wall time of the seed-bound pass.
    pub seed_phase_secs: f64,
    /// Resident scratch bytes per table-pass worker at the end of the pass
    /// (workspace pages + sparse signature arena + accumulators).
    pub table_worker_scratch_bytes: Vec<usize>,
    /// Resident scratch bytes per seed-pass worker at the end of the pass.
    pub seed_worker_scratch_bytes: Vec<usize>,
    /// Bytes of build-shared signature state (the full-graph
    /// [`SignatureTable`] of the unsharded path; 0 when sharded).
    pub shared_signature_bytes: usize,
    /// Table-pass chunks each worker processed outside its home shard (work
    /// stealing across shard boundaries; empty when unsharded).
    pub stolen_chunks: Vec<usize>,
    /// What the pre-sharding engine would keep resident for this graph and
    /// worker count: two dense n-vertex traversal workspaces per worker plus
    /// one full-graph signature table.
    pub naive_scratch_bytes: usize,
}

impl EngineStats {
    /// Total measured resident scratch: every worker of the heavier pass
    /// plus the shared signature state.
    pub fn measured_scratch_bytes(&self) -> usize {
        let table: usize = self.table_worker_scratch_bytes.iter().sum();
        let seed: usize = self.seed_worker_scratch_bytes.iter().sum();
        table.max(seed) + self.shared_signature_bytes
    }
}

/// Aggregates of one `(vertex, radius)` pair, i.e. one r-hop region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusAggregate {
    /// OR of the keyword signatures of every vertex in the region (`BV_r`).
    pub keyword_signature: BitVector,
    /// Maximum data-graph edge support over the region's edges (`ub_sup_r`).
    pub support_upper_bound: u32,
    /// `σ_z(hop(v_i, r))` for each pre-selected threshold, aligned with
    /// [`PrecomputeConfig::thresholds`].
    pub score_upper_bounds: Vec<f64>,
    /// Number of vertices in the region (useful diagnostics; not used for
    /// pruning).
    pub region_size: u32,
}

impl RadiusAggregate {
    /// An "empty region" aggregate (used as the identity when folding).
    pub fn empty(signature_bits: usize, num_thresholds: usize) -> Self {
        RadiusAggregate {
            keyword_signature: BitVector::zeros(signature_bits),
            support_upper_bound: 0,
            score_upper_bounds: vec![0.0; num_thresholds],
            region_size: 0,
        }
    }

    /// Folds another aggregate into this one (bit-OR signatures, max support,
    /// element-wise max scores) — the aggregation used by index entries.
    pub fn merge_max(&mut self, other: &RadiusAggregate) {
        self.merge_max_ref(AggregateRef {
            keyword_signature: other.keyword_signature.as_sig(),
            support_upper_bound: other.support_upper_bound,
            score_upper_bounds: &other.score_upper_bounds,
            region_size: other.region_size,
        });
    }

    /// [`merge_max`] against a borrowed table row (the index builder folds
    /// flattened per-vertex rows without materialising owned aggregates).
    ///
    /// [`merge_max`]: RadiusAggregate::merge_max
    pub fn merge_max_ref(&mut self, other: AggregateRef<'_>) {
        self.keyword_signature
            .or_assign_sig(other.keyword_signature);
        self.support_upper_bound = self.support_upper_bound.max(other.support_upper_bound);
        for (mine, theirs) in self
            .score_upper_bounds
            .iter_mut()
            .zip(other.score_upper_bounds)
        {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
        self.region_size = self.region_size.max(other.region_size);
    }
}

/// All pre-computed data of one vertex: one aggregate per radius
/// `r ∈ [1, r_max]` (index 0 holds `r = 1`). This is the unit of work a
/// pre-computation worker produces before the rows are scattered into the
/// flattened [`AggregateTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct VertexPrecompute {
    /// Aggregates per radius; `per_radius[r - 1]` belongs to radius `r`.
    pub per_radius: Vec<RadiusAggregate>,
}

/// The output of the offline phase for a whole graph: the per-vertex
/// aggregates flattened into one [`AggregateTable`] (`entity` = vertex id)
/// plus the global per-edge supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecomputedData {
    /// The configuration the data was computed with.
    pub config: PrecomputeConfig,
    /// Per-vertex aggregates keyed `(vertex, r, θ_index)`.
    table: AggregateTable,
    /// Per-edge data-graph supports (`ub_sup(e_{u,v})`), indexed by edge id.
    /// [`FlatVec`]-backed so snapshot loads stay zero-copy (see
    /// [`AggregateTable`]'s field docs).
    pub edge_supports: FlatVec<u32>,
    /// Seed-community score bounds `σ_z(X_all(v; SEED_BOUND_SUPPORT, r))`,
    /// flattened `((v · r_max) + (r − 1)) · m + z` like the table's score
    /// lane; [`NO_SEED_COMMUNITY`] where no `X_all` exists (see the module
    /// docs).
    seed_bounds: FlatVec<f64>,
}

impl PrecomputedData {
    /// Runs the offline pre-computation (Algorithm 2) over `g` through the
    /// frontier-incremental, multi-threshold, work-stealing engine (see the
    /// module docs). [`PrecomputeConfig::num_shards`] selects between the
    /// monolithic build and the sharded one; the output is bit-identical
    /// either way.
    pub fn compute(g: &SocialNetwork, config: PrecomputeConfig) -> Self {
        Self::compute_with_stats(g, config).0
    }

    /// [`compute`](PrecomputedData::compute) plus build telemetry: phase
    /// wall times and the resident scratch bytes each worker actually held
    /// (see [`EngineStats`]).
    pub fn compute_with_stats(g: &SocialNetwork, config: PrecomputeConfig) -> (Self, EngineStats) {
        let plan = ShardPlan::contiguous(g.num_vertices(), config.shard_count(g.num_vertices()));
        Self::compute_with_plan(g, config, &plan)
    }

    /// [`compute_with_stats`](PrecomputedData::compute_with_stats) under an
    /// explicit [`ShardPlan`] (the equivalence property tests exercise
    /// arbitrary boundary placements; [`compute`](PrecomputedData::compute)
    /// derives an even plan from [`PrecomputeConfig::num_shards`]).
    pub fn compute_with_plan(
        g: &SocialNetwork,
        config: PrecomputeConfig,
        plan: &ShardPlan,
    ) -> (Self, EngineStats) {
        let n = g.num_vertices();
        let workers = config.worker_count(n);
        let words = config.signature_bits.div_ceil(64);
        let mut stats = EngineStats {
            workers,
            shards: plan.num_shards(),
            naive_scratch_bytes: workers * 2 * TraversalWorkspace::dense_lane_bytes(n)
                + n * words * std::mem::size_of::<u64>(),
            ..EngineStats::default()
        };

        let t = Instant::now();
        let edge_supports = edge_supports_global(g);
        stats.support_phase_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let table = if plan.num_shards() <= 1 {
            Self::compute_table_monolithic(g, &config, &edge_supports, workers, &mut stats)
        } else {
            Self::compute_table_sharded(g, &config, &edge_supports, workers, plan, &mut stats)
        };
        stats.table_phase_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let seed_bounds = compute_seed_bounds(g, &config, workers, plan, &mut stats);
        stats.seed_phase_secs = t.elapsed().as_secs_f64();

        (
            PrecomputedData {
                config,
                table,
                edge_supports: edge_supports.into(),
                seed_bounds: seed_bounds.into(),
            },
            stats,
        )
    }

    /// The unsharded table pass: one table, one shared full-graph signature
    /// table (the right trade when every worker will visit most of the
    /// graph anyway).
    fn compute_table_monolithic(
        g: &SocialNetwork,
        config: &PrecomputeConfig,
        edge_supports: &[u32],
        workers: usize,
        stats: &mut EngineStats,
    ) -> AggregateTable {
        let n = g.num_vertices();
        let mut table = AggregateTable::new(
            n,
            config.r_max,
            config.signature_bits,
            config.thresholds.len(),
        );
        let signatures = SignatureTable::for_graph(g, config.signature_bits);
        stats.shared_signature_bytes =
            n * config.signature_bits.div_ceil(64) * std::mem::size_of::<u64>();
        let ctx = EngineCtx {
            g,
            config,
            edge_supports,
            signatures: SigSource::Table(&signatures),
        };

        if workers <= 1 || n == 0 {
            let mut scratch = WorkerScratch::new(config);
            for mut chunk in table.chunks_mut(n.max(1)) {
                process_chunk(&ctx, &mut chunk, &mut scratch);
            }
            stats
                .table_worker_scratch_bytes
                .push(scratch.resident_bytes());
        } else {
            // Work stealing: chunks small enough that a hub-heavy stretch of
            // vertices cannot straggle one worker, large enough that the
            // atomic claim is free. Each claimed chunk carries its own
            // disjoint mutable window into the table, so workers scatter
            // finished rows in place.
            let chunk_size = (n / (workers * 16)).clamp(8, 512);
            let slots: Vec<Mutex<Option<TableChunkMut<'_>>>> = table
                .chunks_mut(chunk_size)
                .into_iter()
                .map(|c| Mutex::new(Some(c)))
                .collect();
            let next = AtomicUsize::new(0);
            let worker_bytes = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let ctx = &ctx;
                    let slots = &slots;
                    let next = &next;
                    let worker_bytes = &worker_bytes;
                    scope.spawn(move || {
                        let mut scratch = WorkerScratch::new(ctx.config);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(slot) = slots.get(i) else { break };
                            let mut chunk = slot
                                .lock()
                                .expect("chunk slot lock")
                                .take()
                                .expect("each chunk is claimed exactly once");
                            process_chunk(ctx, &mut chunk, &mut scratch);
                        }
                        worker_bytes
                            .lock()
                            .expect("worker byte lock")
                            .push(scratch.resident_bytes());
                    });
                }
            });
            stats.table_worker_scratch_bytes = worker_bytes.into_inner().expect("worker byte lock");
        }
        table
    }

    /// The sharded table pass: each shard owns its slice of the aggregate
    /// table and its chunks are claimed by the shard's home workers first
    /// (chunks are cut per shard table, so they never cross a shard
    /// boundary and the scatter stays a disjoint split borrow). Workers
    /// read member signatures through their own sparse [`SignatureScratch`]
    /// instead of a shared full-graph table, so a worker's resident bytes
    /// track the ball cover of the ranges it processed, not `n`. Shard
    /// tables are stitched into one at freeze — bit-identical to the
    /// monolithic build because every vertex's computation is
    /// self-contained.
    fn compute_table_sharded(
        g: &SocialNetwork,
        config: &PrecomputeConfig,
        edge_supports: &[u32],
        workers: usize,
        plan: &ShardPlan,
        stats: &mut EngineStats,
    ) -> AggregateTable {
        let n = g.num_vertices();
        let shards = plan.num_shards();
        let mut shard_tables: Vec<AggregateTable> = (0..shards)
            .map(|s| {
                AggregateTable::new(
                    plan.range(s).len(),
                    config.r_max,
                    config.signature_bits,
                    config.thresholds.len(),
                )
            })
            .collect();
        let ctx = EngineCtx {
            g,
            config,
            edge_supports,
            signatures: SigSource::WorkerLocal {
                bits: config.signature_bits,
            },
        };
        let chunk_size = (n / (workers * 16)).clamp(8, 512);
        let queues: Vec<(AtomicUsize, Vec<Mutex<Option<TableChunkMut<'_>>>>)> = shard_tables
            .iter_mut()
            .enumerate()
            .map(|(s, table)| {
                let slots = table
                    .chunks_mut_with_base(chunk_size, plan.range(s).start)
                    .into_iter()
                    .map(|c| Mutex::new(Some(c)))
                    .collect();
                (AtomicUsize::new(0), slots)
            })
            .collect();
        let worker_stats = Mutex::new((Vec::new(), Vec::new()));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let ctx = &ctx;
                let queues = &queues;
                let worker_stats = &worker_stats;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::new(ctx.config);
                    let home = w % queues.len();
                    let mut stolen = 0usize;
                    // drain the home shard first, then steal round-robin so
                    // stragglers never leave chunks unclaimed
                    for offset in 0..queues.len() {
                        let (next, slots) = &queues[(home + offset) % queues.len()];
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(slot) = slots.get(i) else { break };
                            let mut chunk = slot
                                .lock()
                                .expect("chunk slot lock")
                                .take()
                                .expect("each chunk is claimed exactly once");
                            process_chunk(ctx, &mut chunk, &mut scratch);
                            if offset != 0 {
                                stolen += 1;
                            }
                        }
                    }
                    let mut guard = worker_stats.lock().expect("worker stats lock");
                    guard.0.push(scratch.resident_bytes());
                    guard.1.push(stolen);
                });
            }
        });
        drop(queues);
        let (bytes, stolen) = worker_stats.into_inner().expect("worker stats lock");
        stats.table_worker_scratch_bytes = bytes;
        stats.stolen_chunks = stolen;
        AggregateTable::stitch(&shard_tables).expect("shard tables share dimensions")
    }

    /// Reference (pre-overhaul) sequential build: one full influence
    /// expansion per `(vertex, radius, threshold)` and per-region re-scans,
    /// via [`reference_precompute_vertex`]. Kept in-tree as the equivalence
    /// baseline for the engine — the property tests and `experiments bench5`
    /// assert the fast path reproduces it (structurally bit-identical,
    /// scores within float-summation tolerance).
    pub fn compute_reference(g: &SocialNetwork, config: PrecomputeConfig) -> Self {
        let edge_supports = edge_supports_global(g);
        let n = g.num_vertices();
        let mut table = AggregateTable::new(
            n,
            config.r_max,
            config.signature_bits,
            config.thresholds.len(),
        );
        let mut ws = TraversalWorkspace::new();
        for i in 0..n {
            let pre = reference_precompute_vertex(
                g,
                &config,
                &edge_supports,
                VertexId::from_index(i),
                &mut ws,
            );
            table.set_entity(i, &pre.per_radius);
        }
        // The seed-bound pass is shared with the engine build: it is new
        // with the progressive kernel, so there is no pre-overhaul reference
        // formulation to diverge from, and sharing it keeps the two builds
        // comparable field-for-field.
        let seed_bounds = compute_seed_bounds(
            g,
            &config,
            1,
            &ShardPlan::contiguous(n, 1),
            &mut EngineStats::default(),
        );
        PrecomputedData {
            config,
            table,
            edge_supports: edge_supports.into(),
            seed_bounds: seed_bounds.into(),
        }
    }

    /// Rebuilds pre-computed data from an already-flattened table (the
    /// binary snapshot loader); errors when the table dimensions disagree
    /// with the configuration.
    pub fn from_table(
        config: PrecomputeConfig,
        table: AggregateTable,
        edge_supports: impl Into<FlatVec<u32>>,
        seed_bounds: impl Into<FlatVec<f64>>,
    ) -> Result<Self, String> {
        let data = PrecomputedData {
            config,
            table,
            edge_supports: edge_supports.into(),
            seed_bounds: seed_bounds.into(),
        };
        data.validate()?;
        Ok(data)
    }

    /// Checks internal table consistency and agreement with the
    /// configuration (run on every untrusted source; see
    /// [`crate::aggregate::AggregateTable::validate`]).
    pub(crate) fn validate(&self) -> Result<(), String> {
        self.table.validate()?;
        if self.table.r_max() != self.config.r_max
            || self.table.signature_bits() != self.config.signature_bits
            || self.table.num_thresholds() != self.config.thresholds.len()
        {
            return Err("aggregate table dimensions disagree with the configuration".to_string());
        }
        let expected =
            self.table.entities() * self.config.r_max as usize * self.config.thresholds.len();
        if self.seed_bounds.len() != expected {
            return Err(format!(
                "seed-bound table has {} entries, expected {expected}",
                self.seed_bounds.len()
            ));
        }
        if self.seed_bounds.iter().any(|b| !b.is_finite()) {
            return Err("seed-bound table contains non-finite entries".to_string());
        }
        Ok(())
    }

    /// The flattened per-vertex aggregate table.
    pub fn table(&self) -> &AggregateTable {
        &self.table
    }

    /// The aggregate of `hop(v, r)` as a borrowed row of the flat table.
    ///
    /// # Panics
    /// Panics if `r` is 0 or exceeds `r_max`.
    pub fn aggregate(&self, v: VertexId, r: u32) -> AggregateRef<'_> {
        self.table.row(v.index(), r)
    }

    /// Influential-score upper bound for `hop(v, r)` under online threshold
    /// `theta`; `+∞` when no pre-selected threshold is ≤ `theta` (no usable
    /// bound ⇒ never prune).
    pub fn score_bound(&self, v: VertexId, r: u32, theta: f64) -> f64 {
        match self.config.threshold_index(theta) {
            Some(z) => self.table.score(v.index(), r, z),
            None => f64::INFINITY,
        }
    }

    /// Seed-community score bound `σ_z(X_all(v; SEED_BOUND_SUPPORT, r))`
    /// under online threshold `theta` (see the module docs): `+∞` when no
    /// pre-selected threshold is ≤ `theta`, `-∞` when no
    /// keyword-unconstrained community exists at this centre at all. Only
    /// sound for queries with `support >= `[`SEED_BOUND_SUPPORT`].
    ///
    /// # Panics
    /// Panics if `r` is 0 or exceeds `r_max`.
    pub fn seed_score_bound(&self, v: VertexId, r: u32, theta: f64) -> f64 {
        let Some(z) = self.config.threshold_index(theta) else {
            return f64::INFINITY;
        };
        assert!(
            r >= 1 && r <= self.config.r_max,
            "radius {r} outside [1, {}]",
            self.config.r_max
        );
        let m = self.config.thresholds.len();
        let row = v.index() * self.config.r_max as usize + (r as usize - 1);
        let stored = self.seed_bounds[row * m + z];
        if stored < 0.0 {
            f64::NEG_INFINITY
        } else {
            stored
        }
    }

    /// The flat seed-bound table (snapshot persistence; see the field docs
    /// for the layout).
    pub fn seed_bounds(&self) -> &[f64] {
        &self.seed_bounds
    }

    /// Number of vertices the data was computed over.
    pub fn num_vertices(&self) -> usize {
        self.table.entities()
    }

    /// Recomputes the aggregates of a single vertex against the current state
    /// of `g` (used by incremental maintenance after graph updates); rides
    /// the same frontier-incremental engine as [`PrecomputedData::compute`].
    ///
    /// `edge_supports` must already reflect the updated graph; use
    /// [`PrecomputedData::refresh_edge_supports`] first. Batch callers should
    /// prefer [`PrecomputedData::recompute_vertices`], which builds the flat
    /// signature table once for the whole batch.
    pub fn recompute_vertex(&mut self, g: &SocialNetwork, v: VertexId) {
        self.recompute_vertices(g, &[v]);
    }

    /// Recomputes the aggregates of a batch of vertices against the current
    /// state of `g` (the incremental-maintenance refresh path), through the
    /// thread-shared scratch. The signature row cache is dropped on every
    /// call — this thread may serve different graphs between calls — so
    /// callers that refresh the *same* graph batch after batch (the
    /// streaming maintainer) should hold a [`MaintenanceArena`] and use
    /// [`PrecomputedData::recompute_vertices_with`] instead, which keeps
    /// rows warm across batches.
    ///
    /// `edge_supports` must already reflect the updated graph; use
    /// [`PrecomputedData::refresh_edge_supports`] first.
    pub fn recompute_vertices(&mut self, g: &SocialNetwork, vertices: &[VertexId]) {
        with_maintenance_scratch(|scratch| {
            // the thread scratch may hold rows of a different same-shaped
            // graph; a warm cache is only sound for a dedicated arena
            scratch.sig.invalidate();
            self.recompute_vertices_into(g, vertices, scratch);
        });
    }

    /// [`recompute_vertices`](PrecomputedData::recompute_vertices) through a
    /// caller-owned [`MaintenanceArena`]. The arena's sparse signature rows
    /// and paged traversal lanes stay warm across calls: keyword sets are
    /// immutable under edge updates and compaction, so nothing is
    /// re-hashed, nothing is zeroed O(n), and resident bytes track the
    /// update balls. The arena must be dedicated to `g` (see
    /// [`MaintenanceArena`]).
    pub fn recompute_vertices_with(
        &mut self,
        g: &SocialNetwork,
        vertices: &[VertexId],
        arena: &mut MaintenanceArena,
    ) {
        self.recompute_vertices_into(g, vertices, &mut arena.scratch);
    }

    /// [`recompute_vertices_with`](PrecomputedData::recompute_vertices_with)
    /// fanned out over `std::thread::scope` workers, one per arena: the
    /// **sorted, deduplicated** affected set is partitioned into contiguous
    /// spans, each worker scatters its span's rows into a disjoint
    /// [`AggregateTable::ranges_mut`] chunk (plus the matching seed-bound
    /// slice), so the refresh is lock-free and the borrow checker proves the
    /// writes disjoint — exactly the offline engine's scatter discipline.
    /// Arenas stay warm across batches per worker. With zero or one arena
    /// (or a batch smaller than the worker count) this degrades to the
    /// sequential single-arena path.
    ///
    /// # Panics
    /// Panics (debug) if `vertices` is not sorted and deduplicated.
    pub fn recompute_vertices_parallel(
        &mut self,
        g: &SocialNetwork,
        vertices: &[VertexId],
        arenas: &mut [MaintenanceArena],
    ) {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "affected set must be sorted and deduplicated"
        );
        if vertices.is_empty() {
            return;
        }
        if arenas.len() <= 1 || vertices.len() < arenas.len() {
            match arenas.first_mut() {
                Some(arena) => self.recompute_vertices_with(g, vertices, arena),
                None => self.recompute_vertices(g, vertices),
            }
            return;
        }
        let per = vertices.len().div_ceil(arenas.len());
        let parts: Vec<&[VertexId]> = vertices.chunks(per).collect();
        let ranges: Vec<(usize, usize)> = parts
            .iter()
            .map(|p| (p[0].index(), p[p.len() - 1].index() + 1))
            .collect();
        let ctx = EngineCtx {
            g,
            config: &self.config,
            edge_supports: &self.edge_supports,
            signatures: SigSource::WorkerLocal {
                bits: self.config.signature_bits,
            },
        };
        let stride = self.config.r_max as usize * self.config.thresholds.len();
        let chunks = self.table.ranges_mut(&ranges);
        let mut seed_rest = self.seed_bounds.to_mut().as_mut_slice();
        let mut seed_slices: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
        let mut consumed = 0usize;
        for &(start, end) in &ranges {
            let rest = std::mem::take(&mut seed_rest);
            let (_, rest) = rest.split_at_mut((start - consumed) * stride);
            let (chunk, rest) = rest.split_at_mut((end - start) * stride);
            seed_slices.push(chunk);
            seed_rest = rest;
            consumed = end;
        }
        let ctx = &ctx;
        std::thread::scope(|scope| {
            for ((part, mut chunk), (seed_slice, arena)) in parts
                .into_iter()
                .zip(chunks)
                .zip(seed_slices.into_iter().zip(arenas.iter_mut()))
            {
                scope.spawn(move || {
                    let base = chunk.first_entity();
                    for &v in part {
                        let local = v.index() - base;
                        precompute_vertex_into(ctx, v, &mut arena.scratch, &mut chunk, local);
                        let row = &mut seed_slice[local * stride..(local + 1) * stride];
                        seed_bounds_vertex_into(ctx.g, ctx.config, &mut arena.scratch, v, row);
                    }
                });
            }
        });
    }

    fn recompute_vertices_into(
        &mut self,
        g: &SocialNetwork,
        vertices: &[VertexId],
        scratch: &mut WorkerScratch,
    ) {
        if vertices.is_empty() {
            return;
        }
        // Rows are hashed once on first touch and replayed from the sparse
        // scratch afterwards, so the batch pays O(ball cover) however large
        // it is — the old full-table rebuild paid O(n·|W|) per refresh.
        let ctx = EngineCtx {
            g,
            config: &self.config,
            edge_supports: &self.edge_supports,
            signatures: SigSource::WorkerLocal {
                bits: self.config.signature_bits,
            },
        };
        let table = &mut self.table;
        let seed_bounds = self.seed_bounds.to_mut();
        let stride = self.config.r_max as usize * self.config.thresholds.len();
        for &v in vertices {
            let mut chunk = table.entity_mut(v.index());
            precompute_vertex_into(&ctx, v, scratch, &mut chunk, 0);
            let row = &mut seed_bounds[v.index() * stride..(v.index() + 1) * stride];
            seed_bounds_vertex_into(ctx.g, ctx.config, scratch, v, row);
        }
    }

    /// Recomputes the global per-edge supports from scratch against the
    /// current state of `g` (sized by its full edge-id space, so tombstoned
    /// slots come back as 0). The incremental paths below are preferred for
    /// single-edge updates.
    pub fn refresh_edge_supports(&mut self, g: &SocialNetwork) {
        self.edge_supports = edge_supports_global(g).into();
    }

    /// Patches `edge_supports` after the edge `{u, v}` (id `e`) has been
    /// inserted into `g` (which must already contain it): the new edge's
    /// support is its common-neighbour count, and every triangle it closes
    /// raises the support of the two adjacent edges by one. O(deg u + deg v),
    /// no full rebuild.
    pub fn patch_supports_after_insertion(
        &mut self,
        g: &SocialNetwork,
        u: VertexId,
        v: VertexId,
        e: EdgeId,
    ) {
        let supports = self.edge_supports.to_mut();
        if supports.len() < g.edge_id_space() {
            supports.resize(g.edge_id_space(), 0);
        }
        let mut sup = 0u32;
        g.for_each_common_neighbor(u, v, |_w, e_uw, e_vw| {
            sup += 1;
            supports[e_uw.index()] += 1;
            supports[e_vw.index()] += 1;
        });
        supports[e.index()] = sup;
    }

    /// Patches `edge_supports` after the edge `{u, v}` (old id `e`) has been
    /// removed from `g` (which must no longer contain it): every triangle the
    /// edge closed is gone, so the other two edges' supports drop by one. The
    /// removed id's slot is zeroed — it stays a tombstoned hole until the
    /// graph compacts.
    pub fn patch_supports_after_removal(
        &mut self,
        g: &SocialNetwork,
        u: VertexId,
        v: VertexId,
        e: EdgeId,
    ) {
        let supports = self.edge_supports.to_mut();
        g.for_each_common_neighbor(u, v, |_w, e_uw, e_vw| {
            supports[e_uw.index()] -= 1;
            supports[e_vw.index()] -= 1;
        });
        if let Some(slot) = supports.get_mut(e.index()) {
            *slot = 0;
        }
    }

    /// [`Self::patch_supports_after_insertion`], additionally appending the
    /// id of every support slot it wrote (the new edge plus the two adjacent
    /// edges of each closed triangle) to `touched`, so callers that publish
    /// supports with structural sharing know exactly which rows went stale.
    pub fn patch_supports_after_insertion_logged(
        &mut self,
        g: &SocialNetwork,
        u: VertexId,
        v: VertexId,
        e: EdgeId,
        touched: &mut Vec<u32>,
    ) {
        let supports = self.edge_supports.to_mut();
        if supports.len() < g.edge_id_space() {
            supports.resize(g.edge_id_space(), 0);
        }
        let mut sup = 0u32;
        g.for_each_common_neighbor(u, v, |_w, e_uw, e_vw| {
            sup += 1;
            supports[e_uw.index()] += 1;
            supports[e_vw.index()] += 1;
            touched.push(e_uw.index() as u32);
            touched.push(e_vw.index() as u32);
        });
        supports[e.index()] = sup;
        touched.push(e.index() as u32);
    }

    /// [`Self::patch_supports_after_removal`], additionally appending every
    /// touched support slot (including the zeroed tombstone) to `touched`.
    pub fn patch_supports_after_removal_logged(
        &mut self,
        g: &SocialNetwork,
        u: VertexId,
        v: VertexId,
        e: EdgeId,
        touched: &mut Vec<u32>,
    ) {
        let supports = self.edge_supports.to_mut();
        g.for_each_common_neighbor(u, v, |_w, e_uw, e_vw| {
            supports[e_uw.index()] -= 1;
            supports[e_vw.index()] -= 1;
            touched.push(e_uw.index() as u32);
            touched.push(e_vw.index() as u32);
        });
        if let Some(slot) = supports.get_mut(e.index()) {
            *slot = 0;
            touched.push(e.index() as u32);
        }
    }

    /// Applies the edge-id remap returned by [`SocialNetwork::compact`] to
    /// the edge-indexed supports, packing live slots into the fresh dense id
    /// space and dropping tombstoned holes.
    pub fn apply_edge_id_remap(&mut self, remap: &EdgeIdRemap) {
        if remap.is_identity() {
            return;
        }
        self.edge_supports = remap.remap_dense(self.edge_supports.as_slice()).into();
    }
}

/// Read-only state shared by every pre-computation worker.
struct EngineCtx<'a> {
    g: &'a SocialNetwork,
    config: &'a PrecomputeConfig,
    edge_supports: &'a [u32],
    signatures: SigSource<'a>,
}

/// Where the engine reads member signatures from. Both variants set exactly
/// the bits `BitVector::from_keywords` would — they share the hash behind
/// [`icde_graph::bitvec::keyword_bit_position`] — so the choice is purely a
/// cost trade: the flat table costs O(n·|W|) to build once and O(words) per
/// member read; hashing on the fly costs O(|W|) per member read with no
/// setup at all.
enum SigSource<'a> {
    /// Per-graph flat table, built once (the unsharded bulk build, where
    /// every worker visits most of the graph anyway).
    Table(&'a SignatureTable),
    /// Each worker caches rows in its own sparse [`SignatureScratch`]
    /// (`WorkerScratch::sig`): hash on first touch, replay afterwards, pay
    /// memory only for the vertices the worker's balls actually cover (the
    /// sharded build and the maintenance paths, where an O(n·|W|) table
    /// build would dwarf the O(ball-cover) work itself).
    WorkerLocal { bits: usize },
}

/// ORs the signature row of member `v` into the scratch accumulator through
/// whichever source the engine is running with. Every arm sets exactly the
/// bits `BitVector::from_keywords` would, so the choice never shows in the
/// output.
#[inline]
fn or_member_sig(ctx: &EngineCtx<'_>, scratch: &mut WorkerScratch, v: VertexId) {
    let WorkerScratch { sig, sig_acc, .. } = scratch;
    match &ctx.signatures {
        SigSource::Table(table) => table.or_into(v, sig_acc),
        SigSource::WorkerLocal { bits } => {
            sig.ensure(ctx.g.num_vertices(), *bits);
            sig.or_row_into(ctx.g, v, sig_acc);
        }
    }
}

/// Per-worker reusable scratch: two traversal workspaces (the BFS one keeps
/// its epoch-stamped distance array valid across all radii while the
/// influence one churns through the expansions), the BFS-order buffer, the
/// signature accumulator and the sparse signature row cache of the
/// worker-local source. Nothing here is allocated per vertex.
#[derive(Default)]
struct WorkerScratch {
    ws_bfs: TraversalWorkspace,
    ws_inf: TraversalWorkspace,
    order: Vec<(VertexId, u32)>,
    sig_acc: Vec<u64>,
    sig: SignatureScratch,
}

impl WorkerScratch {
    fn new(config: &PrecomputeConfig) -> Self {
        WorkerScratch {
            ws_bfs: TraversalWorkspace::new(),
            ws_inf: TraversalWorkspace::new(),
            order: Vec::new(),
            sig_acc: vec![0; config.signature_bits.div_ceil(64)],
            sig: SignatureScratch::new(),
        }
    }

    /// Zeroes the signature accumulator, growing or shrinking it to `words`
    /// first — so one scratch can serve configs of different widths (the
    /// thread-local maintenance scratch outlives any single config).
    fn reset_sig_acc(&mut self, words: usize) {
        self.sig_acc.clear();
        self.sig_acc.resize(words, 0);
    }

    /// Resident bytes this scratch currently pins: workspace lane pages and
    /// queue buffers plus the sparse signature arena and accumulators.
    fn resident_bytes(&self) -> usize {
        self.ws_bfs.scratch_bytes()
            + self.ws_inf.scratch_bytes()
            + self.sig.allocated_bytes()
            + self.order.capacity() * std::mem::size_of::<(VertexId, u32)>()
            + self.sig_acc.capacity() * std::mem::size_of::<u64>()
    }
}

/// A caller-owned maintenance scratch arena: the worker scratch (paged
/// traversal workspaces, sparse signature row cache, accumulators) kept
/// alive across update batches by its owner — the streaming maintainer —
/// instead of rebuilt or invalidated per refresh.
///
/// The signature rows cached inside are keyed by vertex id and stay valid
/// as long as the graph's *keyword sets* do; edge insertions, deletions and
/// compaction never touch them, so an arena dedicated to one
/// [`SocialNetwork`] never needs invalidation. Reusing one arena across
/// different graphs is a logic error unless [`MaintenanceArena::invalidate`]
/// is called in between.
#[derive(Default)]
pub struct MaintenanceArena {
    scratch: WorkerScratch,
}

impl MaintenanceArena {
    /// Creates an empty arena; everything inside grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached signature rows (required when re-targeting the
    /// arena at a different graph, or after keyword sets change).
    pub fn invalidate(&mut self) {
        self.scratch.sig.invalidate();
    }

    /// Number of signature rows currently cached.
    pub fn signature_rows_cached(&self) -> usize {
        self.scratch.sig.rows_cached()
    }

    /// Resident bytes the arena currently pins (workspace pages, signature
    /// arena, accumulators) — maintenance observability; compare against
    /// the `n × ⌈bits/64⌉ × 8` signature table the pre-arena path rebuilt
    /// per batch.
    pub fn resident_bytes(&self) -> usize {
        self.scratch.resident_bytes()
    }

    /// The arena's BFS traversal workspace. The recompute engine re-stamps
    /// its epochs on every call, so callers may freely run their own bounded
    /// traversals (e.g. affected-ball discovery) through the same resident
    /// pages between recomputes.
    pub fn traversal_workspace(&mut self) -> &mut TraversalWorkspace {
        &mut self.scratch.ws_bfs
    }
}

/// Publish shadow over one [`PrecomputedData`]: the vertex aggregate table
/// and seed bounds are marked per dirty *vertex*, the edge supports per
/// dirty *edge id* (with a wholesale invalidation when compaction renumbers
/// the id space). See [`SectionShadow`] for the replay protocol.
#[derive(Debug)]
pub(crate) struct PrecomputeShadow {
    table: TableShadow,
    seed_bounds: SectionShadow<f64>,
    edge_supports: SectionShadow<u32>,
}

impl PrecomputeShadow {
    pub(crate) fn new(data: &PrecomputedData) -> Self {
        let stride = data.config.r_max as usize * data.config.thresholds.len();
        PrecomputeShadow {
            table: TableShadow::new(&data.table),
            seed_bounds: SectionShadow::new(stride.max(1)),
            edge_supports: SectionShadow::new(1),
        }
    }

    /// Marks vertices whose table rows and seed bounds were recomputed.
    pub(crate) fn mark_vertices(&mut self, vertices: &[u32]) {
        self.table.mark_entities(vertices);
        self.seed_bounds.mark_rows(vertices);
    }

    /// Marks edge ids whose support slots were patched.
    pub(crate) fn mark_edges(&mut self, edges: &[u32]) {
        self.edge_supports.mark_rows(edges);
    }

    /// Invalidates the support shadow (the edge-id space was renumbered by
    /// compaction).
    pub(crate) fn mark_all_edges(&mut self) {
        self.edge_supports.mark_all();
    }

    /// Invalidates everything (full recompute / repack of the data).
    pub(crate) fn mark_all(&mut self) {
        self.table.mark_all();
        self.seed_bounds.mark_all();
        self.edge_supports.mark_all();
    }

    /// Syncs both double-buffer slots with `data` so the first publishes
    /// after construction replay dirty rows instead of full-copying.
    pub(crate) fn prime(&mut self, data: &PrecomputedData) {
        self.table.prime(&data.table);
        self.seed_bounds.prime(&data.seed_bounds);
        self.edge_supports.prime(&data.edge_supports);
    }

    /// Builds a structurally-shared snapshot copy of `data`.
    pub(crate) fn publish(&mut self, data: &PrecomputedData) -> PrecomputedData {
        PrecomputedData {
            config: data.config.clone(),
            table: self.table.publish(&data.table),
            edge_supports: self.edge_supports.publish(&data.edge_supports),
            seed_bounds: self.seed_bounds.publish(&data.seed_bounds),
        }
    }
}

thread_local! {
    /// Reusable scratch for the maintenance path: `recompute_vertices` may
    /// be called once per update event, and a fresh scratch would pay the
    /// O(n) workspace grow-and-zero on every call. Same re-entrancy
    /// contract as [`icde_graph::workspace::with_thread_workspace`]: a
    /// nested borrow falls back to a temporary.
    static MAINTENANCE_SCRATCH: std::cell::RefCell<WorkerScratch> =
        std::cell::RefCell::new(WorkerScratch::default());
}

/// Runs `f` with this thread's shared maintenance [`WorkerScratch`].
fn with_maintenance_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    MAINTENANCE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut WorkerScratch::default()),
    })
}

/// Computes every entity of one claimed table chunk.
fn process_chunk(ctx: &EngineCtx<'_>, chunk: &mut TableChunkMut<'_>, scratch: &mut WorkerScratch) {
    let first = chunk.first_entity();
    for local in 0..chunk.len() {
        let v = VertexId::from_index(first + local);
        precompute_vertex_into(ctx, v, scratch, chunk, local);
    }
}

/// The engine inner loop: computes the aggregates of one vertex for every
/// radius and writes them straight into the claimed table chunk.
///
/// One bounded BFS to `r_max` yields the region members in nondecreasing
/// distance order, so radius `r`'s region is the prefix `order[..end_r]` and
/// the *frontier* `order[start_r..end_r]` (distance exactly `r`) is the only
/// new material: its signatures are OR-folded from the flat table, and the
/// support maximum scans only its incident edges whose other endpoint is
/// already inside the region (`dist ≤ r` against the epoch-stamped BFS
/// array). An edge `{u, w}` enters the region exactly when its deeper
/// endpoint joins the frontier (`r = max(d_u, d_w)`), so every region edge
/// is accounted for exactly at its first radius — re-observing an edge whose
/// both endpoints sit on the same frontier is harmless under `max`. The
/// score bounds for all thresholds come from a single expansion per radius
/// ([`InfluenceEvaluator::multi_threshold_scores_into`]).
fn precompute_vertex_into(
    ctx: &EngineCtx<'_>,
    v: VertexId,
    scratch: &mut WorkerScratch,
    chunk: &mut TableChunkMut<'_>,
    local: usize,
) {
    let config = ctx.config;
    let evaluator = InfluenceEvaluator::new(ctx.g, InfluenceConfig { theta: 0.0 });
    bfs_within_into(
        &mut scratch.ws_bfs,
        ctx.g,
        v,
        config.r_max,
        &mut scratch.order,
    );

    scratch.reset_sig_acc(config.signature_bits.div_ceil(64));
    let mut support = 0u32;
    // distance-0 "frontier": the centre itself (no incident region edges yet)
    if let Some(&(center, _)) = scratch.order.first() {
        or_member_sig(ctx, scratch, center);
    }
    let mut end = usize::from(!scratch.order.is_empty());
    for r in 1..=config.r_max {
        let start = end;
        while end < scratch.order.len() && scratch.order[end].1 == r {
            end += 1;
        }
        for idx in start..end {
            let u = scratch.order[idx].0;
            or_member_sig(ctx, scratch, u);
            for (n, e) in ctx.g.neighbors(u) {
                match scratch.ws_bfs.dist(n) {
                    Some(d) if d <= r => {
                        support = support.max(ctx.edge_supports[e.index()]);
                    }
                    _ => {}
                }
            }
        }
        let row = chunk.row_mut(local, r);
        row.signature.copy_from_slice(&scratch.sig_acc);
        *row.support_upper_bound = support;
        *row.region_size = end as u32;
        evaluator.multi_threshold_scores_into(
            &mut scratch.ws_inf,
            scratch.order[..end].iter().map(|&(u, _)| u),
            &config.thresholds,
            row.score_upper_bounds,
        );
    }
}

/// Computes the flat seed-bound table for every vertex (layout: see the
/// [`PrecomputedData::seed_bounds`] field docs), spread over `workers`
/// threads with the same shard-affine work-stealing claim as the table
/// pass: the flat array is cut at shard boundaries first, chunks within a
/// shard go to its home workers before anyone steals, so a worker's
/// traversal pages stay resident on one id range. Each vertex is computed
/// identically regardless of which worker claims it, so the result is
/// deterministic across scheduling shapes.
fn compute_seed_bounds(
    g: &SocialNetwork,
    config: &PrecomputeConfig,
    workers: usize,
    plan: &ShardPlan,
    stats: &mut EngineStats,
) -> Vec<f64> {
    let n = g.num_vertices();
    let stride = config.r_max as usize * config.thresholds.len();
    let mut bounds = vec![NO_SEED_COMMUNITY; n * stride];
    if n == 0 {
        return bounds;
    }
    if workers <= 1 {
        let mut scratch = WorkerScratch::new(config);
        for i in 0..n {
            let v = VertexId::from_index(i);
            let row = &mut bounds[i * stride..(i + 1) * stride];
            seed_bounds_vertex_into(g, config, &mut scratch, v, row);
        }
        stats
            .seed_worker_scratch_bytes
            .push(scratch.resident_bytes());
    } else {
        let chunk_vertices = (n / (workers * 16)).clamp(8, 512);
        // one claimable chunk: (first vertex index, its slice of the table)
        type Chunk<'a> = Option<(usize, &'a mut [f64])>;
        let mut queues: Vec<(AtomicUsize, Vec<Mutex<Chunk<'_>>>)> =
            Vec::with_capacity(plan.num_shards());
        let mut rest: &mut [f64] = &mut bounds;
        for s in 0..plan.num_shards() {
            let range = plan.range(s);
            let (head, tail) = rest.split_at_mut(range.len() * stride);
            rest = tail;
            let slots = head
                .chunks_mut(chunk_vertices * stride)
                .enumerate()
                .map(|(i, c)| Mutex::new(Some((range.start + i * chunk_vertices, c))))
                .collect();
            queues.push((AtomicUsize::new(0), slots));
        }
        let worker_bytes = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let worker_bytes = &worker_bytes;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::new(config);
                    let home = w % queues.len();
                    for offset in 0..queues.len() {
                        let (next, slots) = &queues[(home + offset) % queues.len()];
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(slot) = slots.get(i) else { break };
                            let (first, rows) = slot
                                .lock()
                                .expect("seed-bound slot lock")
                                .take()
                                .expect("each seed-bound chunk is claimed exactly once");
                            for (local, row) in rows.chunks_mut(stride).enumerate() {
                                let v = VertexId::from_index(first + local);
                                seed_bounds_vertex_into(g, config, &mut scratch, v, row);
                            }
                        }
                    }
                    worker_bytes
                        .lock()
                        .expect("worker byte lock")
                        .push(scratch.resident_bytes());
                });
            }
        });
        stats.seed_worker_scratch_bytes = worker_bytes.into_inner().expect("worker byte lock");
    }
    bounds
}

/// Fills one vertex's seed-bound row: per radius, extract
/// `X_all(v; SEED_BOUND_SUPPORT, r)` and score it under every pre-selected
/// threshold with a single influence expansion; [`NO_SEED_COMMUNITY`] where
/// no community exists.
fn seed_bounds_vertex_into(
    g: &SocialNetwork,
    config: &PrecomputeConfig,
    scratch: &mut WorkerScratch,
    v: VertexId,
    row: &mut [f64],
) {
    let m = config.thresholds.len();
    debug_assert_eq!(row.len(), config.r_max as usize * m);
    let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta: 0.0 });
    for r in 1..=config.r_max {
        let slot = &mut row[(r as usize - 1) * m..r as usize * m];
        match extract_unconstrained_seed_community_with(
            &mut scratch.ws_bfs,
            g,
            v,
            SEED_BOUND_SUPPORT,
            r,
        ) {
            Some(community) => evaluator.multi_threshold_scores_into(
                &mut scratch.ws_inf,
                community.iter(),
                &config.thresholds,
                slot,
            ),
            None => slot.fill(NO_SEED_COMMUNITY),
        }
    }
}

/// The pre-overhaul per-vertex computation, kept in-tree as the engine's
/// correctness baseline: one full influence expansion (with its influenced
/// community `HashMap`) per `(radius, threshold)`, per-member signature
/// hashing, and a full induced-edge re-scan per radius. The equivalence
/// property tests (`crates/core/tests/precompute_equivalence.rs`) and
/// `experiments bench5` compare the engine against this path.
pub fn reference_precompute_vertex(
    g: &SocialNetwork,
    config: &PrecomputeConfig,
    edge_supports: &[u32],
    v: VertexId,
    ws: &mut TraversalWorkspace,
) -> VertexPrecompute {
    // One bounded BFS to r_max gives every radius at once.
    let distances = icde_graph::traversal::bfs_within_with(ws, g, v, config.r_max);
    let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta: 0.0 });

    let mut per_radius = Vec::with_capacity(config.r_max as usize);
    for r in 1..=config.r_max {
        let members: Vec<VertexId> = distances
            .distances
            .iter()
            .filter(|(_, d)| *d <= r)
            .map(|(u, _)| *u)
            .collect();
        let region = VertexSubset::from_iter(members.iter().copied());

        // keyword signature: OR of member signatures
        let mut signature = BitVector::zeros(config.signature_bits);
        for &u in &members {
            signature.or_assign(&BitVector::from_keywords(
                g.keyword_set(u),
                config.signature_bits,
            ));
        }

        // support bound: max data-graph support over region edges
        let mut support_upper_bound = 0u32;
        for (e, _, _) in region.induced_edges(g) {
            support_upper_bound = support_upper_bound.max(edge_supports[e.index()]);
        }

        // score bounds: sigma_z(hop(v, r)) for every pre-selected threshold
        let score_upper_bounds: Vec<f64> = config
            .thresholds
            .iter()
            .map(|&theta_z| {
                evaluator
                    .influenced_community_with_theta_in(ws, &region, theta_z)
                    .influential_score()
            })
            .collect();

        per_radius.push(RadiusAggregate {
            keyword_signature: signature,
            support_upper_bound,
            score_upper_bounds,
            region_size: region.len() as u32,
        });
    }
    VertexPrecompute { per_radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::traversal::hop_subgraph;
    use icde_graph::{KeywordSet, VertexId};
    use icde_influence::{InfluenceConfig, InfluenceEvaluator};

    fn small_graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 120, 3)
            .with_keyword_domain(20)
            .generate()
    }

    #[test]
    fn config_defaults_and_threshold_lookup() {
        let c = PrecomputeConfig::default();
        assert_eq!(c.r_max, 3);
        assert_eq!(c.thresholds, vec![0.1, 0.2, 0.3]);
        assert_eq!(c.threshold_index(0.2), Some(1));
        assert_eq!(c.threshold_index(0.25), Some(1));
        assert_eq!(c.threshold_index(0.35), Some(2));
        assert_eq!(c.threshold_index(0.05), None);
        assert_eq!(c.threshold_index(0.1), Some(0));
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn zero_radius_config_panics() {
        let _ = PrecomputeConfig::new(0, vec![0.1]);
    }

    #[test]
    fn new_sorts_thresholds() {
        let c = PrecomputeConfig::new(2, vec![0.3, 0.1, 0.2]);
        assert_eq!(c.thresholds, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn precompute_produces_per_radius_aggregates() {
        let g = small_graph();
        let config = PrecomputeConfig {
            parallel: false,
            ..Default::default()
        };
        let data = PrecomputedData::compute(&g, config);
        assert_eq!(data.num_vertices(), g.num_vertices());
        assert_eq!(data.edge_supports.len(), g.num_edges());
        assert_eq!(data.table().r_max(), 3);
        for v in g.vertices() {
            // larger radius => larger (or equal) region, signature, bounds
            for r in 1..3u32 {
                let smaller = data.aggregate(v, r);
                let larger = data.aggregate(v, r + 1);
                assert!(larger.region_size >= smaller.region_size);
                assert!(larger.support_upper_bound >= smaller.support_upper_bound);
                for z in 0..3 {
                    assert!(larger.score_upper_bounds[z] >= smaller.score_upper_bounds[z] - 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = small_graph();
        let seq = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        // every scheduling shape must write the exact same table: the
        // default-parallel build, a pinned worker count that forces many
        // stolen chunks, and `--threads 1` through `num_threads`
        for config in [
            PrecomputeConfig {
                parallel: true,
                ..Default::default()
            },
            PrecomputeConfig::default().with_num_threads(Some(3)),
            PrecomputeConfig::default().with_num_threads(Some(1)),
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            }
            .with_num_threads(Some(5)),
        ] {
            let par = PrecomputedData::compute(&g, config);
            assert_eq!(seq.edge_supports, par.edge_supports);
            assert_eq!(seq.num_vertices(), par.num_vertices());
            // the engine computes each vertex identically regardless of which
            // worker claims it, so even the float scores are bit-identical
            assert_eq!(seq.table(), par.table());
            assert_eq!(seq.seed_bounds(), par.seed_bounds());
        }
    }

    #[test]
    fn num_threads_never_persists() {
        // the JSON round-trip must drop the runtime knobs and keep the data
        let config = PrecomputeConfig::new(2, vec![0.1, 0.4])
            .with_num_threads(Some(7))
            .with_num_shards(Some(4));
        let json = serde_json::to_string(&config).unwrap();
        assert!(!json.contains("num_threads"), "runtime knob leaked: {json}");
        assert!(!json.contains("num_shards"), "runtime knob leaked: {json}");
        let back: PrecomputeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_threads, None);
        assert_eq!(back.num_shards, None);
        assert_eq!(back.r_max, config.r_max);
        assert_eq!(back.thresholds, config.thresholds);
        assert_eq!(back.signature_bits, config.signature_bits);
        assert_eq!(back.parallel, config.parallel);
    }

    #[test]
    fn contiguous_shard_plan_covers_the_id_space() {
        let plan = ShardPlan::contiguous(10, 4);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(
            (0..4).map(|s| plan.range(s)).collect::<Vec<_>>(),
            vec![0..3, 3..6, 6..8, 8..10]
        );
        // clamped to n, and an empty graph still yields one (empty) shard
        assert_eq!(ShardPlan::contiguous(3, 100).num_shards(), 3);
        let empty = ShardPlan::contiguous(0, 5);
        assert_eq!(empty.num_shards(), 1);
        assert_eq!(empty.range(0), 0..0);

        let explicit = ShardPlan::from_interior_boundaries(10, &[1, 9]).unwrap();
        assert_eq!(explicit.num_shards(), 3);
        assert_eq!(explicit.range(1), 1..9);
        assert!(ShardPlan::from_interior_boundaries(10, &[0]).is_err());
        assert!(ShardPlan::from_interior_boundaries(10, &[10]).is_err());
        assert!(ShardPlan::from_interior_boundaries(10, &[4, 4]).is_err());
    }

    #[test]
    fn sharded_builds_are_bit_identical_to_the_unsharded_engine() {
        let g = small_graph();
        let unsharded = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        // shard counts around the worker count, above it, and degenerate
        for (shards, threads) in [(2, 3), (4, 2), (7, 7), (16, 1), (120, 4)] {
            let (sharded, stats) = PrecomputedData::compute_with_stats(
                &g,
                PrecomputeConfig::default()
                    .with_num_threads(Some(threads))
                    .with_num_shards(Some(shards)),
            );
            assert_eq!(stats.shards, shards.min(g.num_vertices()));
            assert_eq!(sharded.edge_supports, unsharded.edge_supports);
            // every vertex's computation is self-contained, so even float
            // scores are bit-identical across shard shapes
            assert_eq!(sharded.table(), unsharded.table());
            assert_eq!(sharded.seed_bounds(), unsharded.seed_bounds());
            assert_eq!(
                sharded.table().structural_fingerprint(),
                unsharded.table().structural_fingerprint()
            );
            assert_eq!(sharded.table().max_score_delta(unsharded.table()), 0.0);
        }
    }

    #[test]
    fn uneven_explicit_shard_plans_agree_too() {
        let g = small_graph();
        let n = g.num_vertices();
        let baseline = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        // a lopsided plan: shards smaller than one work-stealing chunk next
        // to one holding almost the whole graph
        let plan = ShardPlan::from_interior_boundaries(n, &[2, 5, n - 1]).unwrap();
        let (sharded, stats) = PrecomputedData::compute_with_plan(
            &g,
            PrecomputeConfig::default().with_num_threads(Some(3)),
            &plan,
        );
        assert_eq!(stats.shards, 4);
        assert_eq!(sharded.table(), baseline.table());
        assert_eq!(sharded.seed_bounds(), baseline.seed_bounds());
    }

    #[test]
    fn build_stats_report_bounded_worker_scratch() {
        let g = small_graph();
        let (_, stats) = PrecomputedData::compute_with_stats(
            &g,
            PrecomputeConfig::default()
                .with_num_threads(Some(4))
                .with_num_shards(Some(4)),
        );
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.table_worker_scratch_bytes.len(), 4);
        assert_eq!(stats.seed_worker_scratch_bytes.len(), 4);
        assert_eq!(stats.stolen_chunks.len(), 4);
        assert_eq!(
            stats.shared_signature_bytes, 0,
            "sharded build shares no table"
        );
        assert!(stats.table_worker_scratch_bytes.iter().all(|&b| b > 0));
        assert!(stats.naive_scratch_bytes > 0);
        // the unsharded build pins the full-graph signature table instead
        let (_, mono) = PrecomputedData::compute_with_stats(
            &g,
            PrecomputeConfig::default().with_num_threads(Some(2)),
        );
        assert_eq!(mono.shards, 1);
        assert_eq!(
            mono.shared_signature_bytes,
            g.num_vertices() * 2 * std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn arena_recompute_matches_fresh_build_and_stays_warm() {
        let spec = DatasetSpec::new(DatasetKind::Uniform, 80, 5).with_keyword_domain(16);
        let g = spec.generate();
        let config = PrecomputeConfig {
            parallel: false,
            ..Default::default()
        };
        let fresh = PrecomputedData::compute(&g, config.clone());
        let mut stale = PrecomputedData::compute(&g, config);
        let mut arena = MaintenanceArena::new();
        let victims: Vec<VertexId> = (0..10).map(VertexId::from_index).collect();
        stale.recompute_vertices_with(&g, &victims, &mut arena);
        assert_eq!(stale.table(), fresh.table());
        assert_eq!(stale.seed_bounds(), fresh.seed_bounds());
        let cached = arena.signature_rows_cached();
        assert!(cached > 0, "arena caches the touched balls");
        assert!(arena.resident_bytes() > 0);
        // a second batch over the same balls re-hashes nothing
        stale.recompute_vertices_with(&g, &victims, &mut arena);
        assert_eq!(arena.signature_rows_cached(), cached);
        assert_eq!(stale.table(), fresh.table());
    }

    #[test]
    fn worker_count_resolution() {
        let base = PrecomputeConfig::default();
        assert_eq!(base.clone().with_num_threads(Some(4)).worker_count(100), 4);
        // explicit threads override the parallel flag, and are capped by n
        assert_eq!(
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            }
            .with_num_threads(Some(4))
            .worker_count(2),
            2
        );
        assert_eq!(base.clone().with_num_threads(Some(0)).worker_count(10), 1);
        assert_eq!(
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            }
            .worker_count(10),
            1
        );
        assert!(base.worker_count(1_000_000) >= 1);
    }

    #[test]
    fn engine_matches_reference_path() {
        let g = small_graph();
        let config = PrecomputeConfig {
            parallel: false,
            ..Default::default()
        };
        let fast = PrecomputedData::compute(&g, config.clone());
        let reference = PrecomputedData::compute_reference(&g, config);
        assert_eq!(fast.edge_supports, reference.edge_supports);
        assert_eq!(
            fast.table().structural_fingerprint(),
            reference.table().structural_fingerprint()
        );
        assert!(fast.table().max_score_delta(reference.table()) < 1e-9);
    }

    #[test]
    fn signature_covers_region_keywords() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for v in g.vertices().take(20) {
            let region = hop_subgraph(&g, v, 2);
            let agg = data.aggregate(v, 2);
            for u in region.iter() {
                for kw in g.keyword_set(u).iter() {
                    assert!(agg.keyword_signature.maybe_contains(kw));
                }
            }
        }
    }

    #[test]
    fn support_bound_dominates_region_supports() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for v in g.vertices().take(20) {
            let region = hop_subgraph(&g, v, 2);
            let agg = data.aggregate(v, 2);
            let exact = icde_truss::support::max_edge_support(&g, &region);
            assert!(agg.support_upper_bound >= exact, "vertex {v}");
        }
    }

    #[test]
    fn score_bound_dominates_any_subcommunity_score() {
        // sigma_z(hop(v, r)) with theta_z <= theta is an upper bound of the
        // score of any seed subgraph of hop(v, r) at theta.
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let theta = 0.25; // falls in [0.2, 0.3)
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(theta));
        for v in g.vertices().take(15) {
            let bound = data.score_bound(v, 2, theta);
            let region = hop_subgraph(&g, v, 2);
            // the region itself
            assert!(
                bound + 1e-9 >= eval.influential_score(&region),
                "vertex {v}"
            );
            // and an arbitrary subset of it (here: the 1-hop ball)
            let sub = hop_subgraph(&g, v, 1);
            assert!(bound + 1e-9 >= eval.influential_score(&sub), "vertex {v}");
        }
    }

    #[test]
    fn seed_bound_dominates_constrained_communities() {
        // sigma_theta of any keyword-constrained seed community with support
        // >= SEED_BOUND_SUPPORT is bounded by the stored sigma_z(X_all).
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let theta = 0.25; // falls in [0.2, 0.3)
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(theta));
        let keywords = KeywordSet::from_ids([0u32, 1, 2, 3, 4]);
        for v in g.vertices().take(40) {
            for r in 1..=2u32 {
                for k in [SEED_BOUND_SUPPORT, SEED_BOUND_SUPPORT + 1] {
                    if let Some(c) = crate::seed::extract_seed_community(&g, v, k, r, &keywords) {
                        let bound = data.seed_score_bound(v, r, theta);
                        assert!(
                            bound + 1e-9 >= eval.influential_score(&c),
                            "vertex {v} r {r} k {k}: bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn seed_bound_sentinel_and_threshold_edges() {
        // An isolated vertex has no X_all at any radius: its stored sentinel
        // must read back as -inf; a theta below every pre-selected threshold
        // must read back as +inf (no usable bound).
        let g = {
            let mut b = icde_graph::GraphBuilder::new();
            for _ in 0..4 {
                b.add_vertex(KeywordSet::from_ids([1u32]));
            }
            b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
            b.build().unwrap()
        };
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        // vertex 3 is isolated; vertex 0 is on a single edge (no triangle)
        assert_eq!(
            data.seed_score_bound(VertexId(3), 2, 0.2),
            f64::NEG_INFINITY
        );
        assert_eq!(
            data.seed_score_bound(VertexId(0), 2, 0.2),
            f64::NEG_INFINITY
        );
        assert!(data.seed_score_bound(VertexId(0), 1, 0.01).is_infinite());
        assert!(data.seed_score_bound(VertexId(0), 1, 0.01) > 0.0);
        // every stored entry is the finite sentinel, never an actual -inf
        assert!(data.seed_bounds().iter().all(|b| b.is_finite()));
    }

    #[test]
    fn recompute_refreshes_seed_bounds() {
        let g = small_graph();
        let config = PrecomputeConfig {
            parallel: false,
            ..Default::default()
        };
        let reference = PrecomputedData::compute(&g, config.clone());
        let mut stale = reference.clone();
        // corrupt a few rows, then recompute those vertices: the rows must
        // come back bit-identical to the fresh build
        let victims = [VertexId(0), VertexId(17), VertexId(63)];
        let stride = config.r_max as usize * config.thresholds.len();
        for v in victims {
            stale.seed_bounds.to_mut()[v.index() * stride..(v.index() + 1) * stride].fill(9999.0);
        }
        stale.recompute_vertices(&g, &victims);
        assert_eq!(stale.seed_bounds(), reference.seed_bounds());
    }

    #[test]
    fn score_bound_without_valid_threshold_is_infinite() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(data.score_bound(VertexId(0), 1, 0.01).is_infinite());
    }

    #[test]
    fn merge_max_folds_aggregates() {
        let mut a = RadiusAggregate::empty(64, 2);
        let mut b = RadiusAggregate::empty(64, 2);
        a.support_upper_bound = 3;
        a.score_upper_bounds = vec![5.0, 2.0];
        a.keyword_signature = BitVector::from_keywords(&KeywordSet::from_ids([1]), 64);
        b.support_upper_bound = 7;
        b.score_upper_bounds = vec![4.0, 6.0];
        b.keyword_signature = BitVector::from_keywords(&KeywordSet::from_ids([2]), 64);
        a.merge_max(&b);
        assert_eq!(a.support_upper_bound, 7);
        assert_eq!(a.score_upper_bounds, vec![5.0, 6.0]);
        assert!(a.keyword_signature.maybe_contains(icde_graph::Keyword(1)));
        assert!(a.keyword_signature.maybe_contains(icde_graph::Keyword(2)));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn aggregate_out_of_range_radius_panics() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let _ = data.aggregate(VertexId(0), 9);
    }
}
