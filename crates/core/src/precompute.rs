//! Offline pre-computation (Algorithm 2).
//!
//! For every vertex `v_i` and every radius `r ∈ [1, r_max]`, the offline
//! phase computes three aggregates over the r-hop region `hop(v_i, r)`:
//!
//! * the OR-folded keyword signature `v_i.BV_r` (used by keyword pruning),
//! * the support upper bound `v_i.ub_sup_r` — the maximum *data-graph* edge
//!   support over the region's edges (used by support pruning),
//! * `m` influential-score upper bounds `σ_z(hop(v_i, r))`, one per
//!   pre-selected threshold `θ_z` (used by influential-score pruning): the
//!   score of the whole region over-estimates the score of any seed community
//!   extracted from it.
//!
//! The per-vertex work items are independent, so the computation is spread
//! over `available_parallelism()` worker threads with `std::thread::scope`;
//! each worker owns one [`TraversalWorkspace`] and amortises every BFS and
//! influence expansion of its chunk through it.

use crate::aggregate::{AggregateRef, AggregateTable};
use icde_graph::traversal::bfs_within_with;
use icde_graph::workspace::{with_thread_workspace, TraversalWorkspace};
use icde_graph::{BitVector, SocialNetwork, VertexId, VertexSubset};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use icde_truss::support::edge_supports_global;
use serde::{Deserialize, Serialize};

/// Configuration of the offline pre-computation phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecomputeConfig {
    /// Maximum radius `r_max` to pre-compute aggregates for (queries may use
    /// any `r ≤ r_max`).
    pub r_max: u32,
    /// Pre-selected influence thresholds `θ_1 < θ_2 < ... < θ_m`; an online
    /// threshold `θ ∈ [θ_z, θ_{z+1})` uses `σ_z` as its score upper bound.
    pub thresholds: Vec<f64>,
    /// Width (in bits) of the keyword signatures.
    pub signature_bits: usize,
    /// Whether to spread the per-vertex work across worker threads.
    pub parallel: bool,
}

impl Default for PrecomputeConfig {
    /// The paper's defaults: `r_max = 3`, thresholds `{0.1, 0.2, 0.3}`
    /// (Table III), 128-bit signatures.
    fn default() -> Self {
        PrecomputeConfig {
            r_max: 3,
            thresholds: vec![0.1, 0.2, 0.3],
            signature_bits: 128,
            parallel: true,
        }
    }
}

impl PrecomputeConfig {
    /// Creates a config with explicit `r_max` and thresholds (sorted and
    /// validated).
    ///
    /// # Panics
    /// Panics if `r_max == 0`, thresholds is empty, or any threshold is
    /// outside `[0, 1)`.
    pub fn new(r_max: u32, mut thresholds: Vec<f64>) -> Self {
        assert!(r_max >= 1, "r_max must be at least 1");
        assert!(!thresholds.is_empty(), "at least one threshold is required");
        assert!(
            thresholds.iter().all(|t| (0.0..1.0).contains(t)),
            "thresholds must lie in [0, 1)"
        );
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        PrecomputeConfig {
            r_max,
            thresholds,
            ..Default::default()
        }
    }

    /// Overrides the signature width.
    pub fn with_signature_bits(mut self, bits: usize) -> Self {
        self.signature_bits = bits;
        self
    }

    /// Enables or disables parallel pre-computation.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Index of the largest pre-selected threshold `θ_z ≤ θ`, or `None` if
    /// `θ` is below every pre-selected threshold (in which case no valid
    /// pre-computed upper bound exists and score pruning is disabled).
    pub fn threshold_index(&self, theta: f64) -> Option<usize> {
        let mut best = None;
        for (i, t) in self.thresholds.iter().enumerate() {
            if *t <= theta {
                best = Some(i);
            }
        }
        best
    }
}

/// Aggregates of one `(vertex, radius)` pair, i.e. one r-hop region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusAggregate {
    /// OR of the keyword signatures of every vertex in the region (`BV_r`).
    pub keyword_signature: BitVector,
    /// Maximum data-graph edge support over the region's edges (`ub_sup_r`).
    pub support_upper_bound: u32,
    /// `σ_z(hop(v_i, r))` for each pre-selected threshold, aligned with
    /// [`PrecomputeConfig::thresholds`].
    pub score_upper_bounds: Vec<f64>,
    /// Number of vertices in the region (useful diagnostics; not used for
    /// pruning).
    pub region_size: u32,
}

impl RadiusAggregate {
    /// An "empty region" aggregate (used as the identity when folding).
    pub fn empty(signature_bits: usize, num_thresholds: usize) -> Self {
        RadiusAggregate {
            keyword_signature: BitVector::zeros(signature_bits),
            support_upper_bound: 0,
            score_upper_bounds: vec![0.0; num_thresholds],
            region_size: 0,
        }
    }

    /// Folds another aggregate into this one (bit-OR signatures, max support,
    /// element-wise max scores) — the aggregation used by index entries.
    pub fn merge_max(&mut self, other: &RadiusAggregate) {
        self.merge_max_ref(AggregateRef {
            keyword_signature: other.keyword_signature.as_sig(),
            support_upper_bound: other.support_upper_bound,
            score_upper_bounds: &other.score_upper_bounds,
            region_size: other.region_size,
        });
    }

    /// [`merge_max`] against a borrowed table row (the index builder folds
    /// flattened per-vertex rows without materialising owned aggregates).
    ///
    /// [`merge_max`]: RadiusAggregate::merge_max
    pub fn merge_max_ref(&mut self, other: AggregateRef<'_>) {
        self.keyword_signature
            .or_assign_sig(other.keyword_signature);
        self.support_upper_bound = self.support_upper_bound.max(other.support_upper_bound);
        for (mine, theirs) in self
            .score_upper_bounds
            .iter_mut()
            .zip(other.score_upper_bounds)
        {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
        self.region_size = self.region_size.max(other.region_size);
    }
}

/// All pre-computed data of one vertex: one aggregate per radius
/// `r ∈ [1, r_max]` (index 0 holds `r = 1`). This is the unit of work a
/// pre-computation worker produces before the rows are scattered into the
/// flattened [`AggregateTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct VertexPrecompute {
    /// Aggregates per radius; `per_radius[r - 1]` belongs to radius `r`.
    pub per_radius: Vec<RadiusAggregate>,
}

/// The output of the offline phase for a whole graph: the per-vertex
/// aggregates flattened into one [`AggregateTable`] (`entity` = vertex id)
/// plus the global per-edge supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecomputedData {
    /// The configuration the data was computed with.
    pub config: PrecomputeConfig,
    /// Per-vertex aggregates keyed `(vertex, r, θ_index)`.
    table: AggregateTable,
    /// Per-edge data-graph supports (`ub_sup(e_{u,v})`), indexed by edge id.
    pub edge_supports: Vec<u32>,
}

impl PrecomputedData {
    /// Runs the offline pre-computation (Algorithm 2) over `g`.
    pub fn compute(g: &SocialNetwork, config: PrecomputeConfig) -> Self {
        let edge_supports = edge_supports_global(g);
        let n = g.num_vertices();
        let mut table = AggregateTable::new(
            n,
            config.r_max,
            config.signature_bits,
            config.thresholds.len(),
        );

        let workers = if config.parallel {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n.max(1))
        } else {
            1
        };

        if workers <= 1 || n == 0 {
            let mut ws = TraversalWorkspace::new();
            for i in 0..n {
                let pre =
                    precompute_vertex(g, &config, &edge_supports, VertexId::from_index(i), &mut ws);
                table.set_entity(i, &pre.per_radius);
            }
        } else {
            let chunk = n.div_ceil(workers);
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for w in 0..workers {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(n);
                    if start >= end {
                        break;
                    }
                    let config = &config;
                    let edge_supports = &edge_supports;
                    handles.push(scope.spawn(move || {
                        // one workspace per worker: scratch arrays and queues
                        // are reused across the whole chunk
                        let mut ws = TraversalWorkspace::new();
                        (start..end)
                            .map(|i| {
                                precompute_vertex(
                                    g,
                                    config,
                                    edge_supports,
                                    VertexId::from_index(i),
                                    &mut ws,
                                )
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pre-computation worker panicked"))
                    .collect::<Vec<_>>()
            });
            let mut idx = 0usize;
            for chunk_result in results {
                for item in chunk_result {
                    table.set_entity(idx, &item.per_radius);
                    idx += 1;
                }
            }
        }

        PrecomputedData {
            config,
            table,
            edge_supports,
        }
    }

    /// Rebuilds pre-computed data from an already-flattened table (the
    /// binary snapshot loader); errors when the table dimensions disagree
    /// with the configuration.
    pub fn from_table(
        config: PrecomputeConfig,
        table: AggregateTable,
        edge_supports: Vec<u32>,
    ) -> Result<Self, String> {
        let data = PrecomputedData {
            config,
            table,
            edge_supports,
        };
        data.validate()?;
        Ok(data)
    }

    /// Checks internal table consistency and agreement with the
    /// configuration (run on every untrusted source; see
    /// [`crate::aggregate::AggregateTable::validate`]).
    pub(crate) fn validate(&self) -> Result<(), String> {
        self.table.validate()?;
        if self.table.r_max() != self.config.r_max
            || self.table.signature_bits() != self.config.signature_bits
            || self.table.num_thresholds() != self.config.thresholds.len()
        {
            return Err("aggregate table dimensions disagree with the configuration".to_string());
        }
        Ok(())
    }

    /// The flattened per-vertex aggregate table.
    pub fn table(&self) -> &AggregateTable {
        &self.table
    }

    /// The aggregate of `hop(v, r)` as a borrowed row of the flat table.
    ///
    /// # Panics
    /// Panics if `r` is 0 or exceeds `r_max`.
    pub fn aggregate(&self, v: VertexId, r: u32) -> AggregateRef<'_> {
        self.table.row(v.index(), r)
    }

    /// Influential-score upper bound for `hop(v, r)` under online threshold
    /// `theta`; `+∞` when no pre-selected threshold is ≤ `theta` (no usable
    /// bound ⇒ never prune).
    pub fn score_bound(&self, v: VertexId, r: u32, theta: f64) -> f64 {
        match self.config.threshold_index(theta) {
            Some(z) => self.table.score(v.index(), r, z),
            None => f64::INFINITY,
        }
    }

    /// Number of vertices the data was computed over.
    pub fn num_vertices(&self) -> usize {
        self.table.entities()
    }

    /// Recomputes the aggregates of a single vertex against the current state
    /// of `g` (used by incremental maintenance after graph updates).
    ///
    /// `edge_supports` must already reflect the updated graph; use
    /// [`PrecomputedData::refresh_edge_supports`] first.
    pub fn recompute_vertex(&mut self, g: &SocialNetwork, v: VertexId) {
        let pre = with_thread_workspace(|ws| {
            precompute_vertex(g, &self.config, &self.edge_supports, v, ws)
        });
        self.table.set_entity(v.index(), &pre.per_radius);
    }

    /// Recomputes the global per-edge supports from scratch against the
    /// current state of `g` (edge ids may have shifted after insertions).
    pub fn refresh_edge_supports(&mut self, g: &SocialNetwork) {
        self.edge_supports = edge_supports_global(g);
    }
}

/// Computes the aggregates of a single vertex for every radius, running
/// every traversal through the caller's workspace.
fn precompute_vertex(
    g: &SocialNetwork,
    config: &PrecomputeConfig,
    edge_supports: &[u32],
    v: VertexId,
    ws: &mut TraversalWorkspace,
) -> VertexPrecompute {
    // One bounded BFS to r_max gives every radius at once.
    let distances = bfs_within_with(ws, g, v, config.r_max);
    let evaluator = InfluenceEvaluator::new(g, InfluenceConfig { theta: 0.0 });

    let mut per_radius = Vec::with_capacity(config.r_max as usize);
    for r in 1..=config.r_max {
        let members: Vec<VertexId> = distances
            .distances
            .iter()
            .filter(|(_, d)| *d <= r)
            .map(|(u, _)| *u)
            .collect();
        let region = VertexSubset::from_iter(members.iter().copied());

        // keyword signature: OR of member signatures
        let mut signature = BitVector::zeros(config.signature_bits);
        for &u in &members {
            signature.or_assign(&BitVector::from_keywords(
                g.keyword_set(u),
                config.signature_bits,
            ));
        }

        // support bound: max data-graph support over region edges
        let mut support_upper_bound = 0u32;
        for (e, _, _) in region.induced_edges(g) {
            support_upper_bound = support_upper_bound.max(edge_supports[e.index()]);
        }

        // score bounds: sigma_z(hop(v, r)) for every pre-selected threshold
        let score_upper_bounds: Vec<f64> = config
            .thresholds
            .iter()
            .map(|&theta_z| {
                evaluator
                    .influenced_community_with_theta_in(ws, &region, theta_z)
                    .influential_score()
            })
            .collect();

        per_radius.push(RadiusAggregate {
            keyword_signature: signature,
            support_upper_bound,
            score_upper_bounds,
            region_size: region.len() as u32,
        });
    }
    VertexPrecompute { per_radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::traversal::hop_subgraph;
    use icde_graph::{KeywordSet, VertexId};
    use icde_influence::{InfluenceConfig, InfluenceEvaluator};

    fn small_graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 120, 3)
            .with_keyword_domain(20)
            .generate()
    }

    #[test]
    fn config_defaults_and_threshold_lookup() {
        let c = PrecomputeConfig::default();
        assert_eq!(c.r_max, 3);
        assert_eq!(c.thresholds, vec![0.1, 0.2, 0.3]);
        assert_eq!(c.threshold_index(0.2), Some(1));
        assert_eq!(c.threshold_index(0.25), Some(1));
        assert_eq!(c.threshold_index(0.35), Some(2));
        assert_eq!(c.threshold_index(0.05), None);
        assert_eq!(c.threshold_index(0.1), Some(0));
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn zero_radius_config_panics() {
        let _ = PrecomputeConfig::new(0, vec![0.1]);
    }

    #[test]
    fn new_sorts_thresholds() {
        let c = PrecomputeConfig::new(2, vec![0.3, 0.1, 0.2]);
        assert_eq!(c.thresholds, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn precompute_produces_per_radius_aggregates() {
        let g = small_graph();
        let config = PrecomputeConfig {
            parallel: false,
            ..Default::default()
        };
        let data = PrecomputedData::compute(&g, config);
        assert_eq!(data.num_vertices(), g.num_vertices());
        assert_eq!(data.edge_supports.len(), g.num_edges());
        assert_eq!(data.table().r_max(), 3);
        for v in g.vertices() {
            // larger radius => larger (or equal) region, signature, bounds
            for r in 1..3u32 {
                let smaller = data.aggregate(v, r);
                let larger = data.aggregate(v, r + 1);
                assert!(larger.region_size >= smaller.region_size);
                assert!(larger.support_upper_bound >= smaller.support_upper_bound);
                for z in 0..3 {
                    assert!(larger.score_upper_bounds[z] >= smaller.score_upper_bounds[z] - 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = small_graph();
        let seq = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let par = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: true,
                ..Default::default()
            },
        );
        // configs differ in the `parallel` flag only; the computed data must
        // agree (scores up to floating-point summation order, which depends
        // on hash-map iteration order inside the influence evaluator)
        assert_eq!(seq.edge_supports, par.edge_supports);
        assert_eq!(seq.num_vertices(), par.num_vertices());
        for v in g.vertices() {
            for r in 1..=3u32 {
                let ra = seq.aggregate(v, r);
                let rb = par.aggregate(v, r);
                assert_eq!(ra.keyword_signature, rb.keyword_signature);
                assert_eq!(ra.support_upper_bound, rb.support_upper_bound);
                assert_eq!(ra.region_size, rb.region_size);
                for (sa, sb) in ra
                    .score_upper_bounds
                    .iter()
                    .zip(rb.score_upper_bounds.iter())
                {
                    assert!((sa - sb).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn signature_covers_region_keywords() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for v in g.vertices().take(20) {
            let region = hop_subgraph(&g, v, 2);
            let agg = data.aggregate(v, 2);
            for u in region.iter() {
                for kw in g.keyword_set(u).iter() {
                    assert!(agg.keyword_signature.maybe_contains(kw));
                }
            }
        }
    }

    #[test]
    fn support_bound_dominates_region_supports() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for v in g.vertices().take(20) {
            let region = hop_subgraph(&g, v, 2);
            let agg = data.aggregate(v, 2);
            let exact = icde_truss::support::max_edge_support(&g, &region);
            assert!(agg.support_upper_bound >= exact, "vertex {v}");
        }
    }

    #[test]
    fn score_bound_dominates_any_subcommunity_score() {
        // sigma_z(hop(v, r)) with theta_z <= theta is an upper bound of the
        // score of any seed subgraph of hop(v, r) at theta.
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let theta = 0.25; // falls in [0.2, 0.3)
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(theta));
        for v in g.vertices().take(15) {
            let bound = data.score_bound(v, 2, theta);
            let region = hop_subgraph(&g, v, 2);
            // the region itself
            assert!(
                bound + 1e-9 >= eval.influential_score(&region),
                "vertex {v}"
            );
            // and an arbitrary subset of it (here: the 1-hop ball)
            let sub = hop_subgraph(&g, v, 1);
            assert!(bound + 1e-9 >= eval.influential_score(&sub), "vertex {v}");
        }
    }

    #[test]
    fn score_bound_without_valid_threshold_is_infinite() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(data.score_bound(VertexId(0), 1, 0.01).is_infinite());
    }

    #[test]
    fn merge_max_folds_aggregates() {
        let mut a = RadiusAggregate::empty(64, 2);
        let mut b = RadiusAggregate::empty(64, 2);
        a.support_upper_bound = 3;
        a.score_upper_bounds = vec![5.0, 2.0];
        a.keyword_signature = BitVector::from_keywords(&KeywordSet::from_ids([1]), 64);
        b.support_upper_bound = 7;
        b.score_upper_bounds = vec![4.0, 6.0];
        b.keyword_signature = BitVector::from_keywords(&KeywordSet::from_ids([2]), 64);
        a.merge_max(&b);
        assert_eq!(a.support_upper_bound, 7);
        assert_eq!(a.score_upper_bounds, vec![5.0, 6.0]);
        assert!(a.keyword_signature.maybe_contains(icde_graph::Keyword(1)));
        assert!(a.keyword_signature.maybe_contains(icde_graph::Keyword(2)));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn aggregate_out_of_range_radius_panics() {
        let g = small_graph();
        let data = PrecomputedData::compute(
            &g,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let _ = data.aggregate(VertexId(0), 9);
    }
}
