//! Binary snapshot persistence for the [`CommunityIndex`].
//!
//! Uses the same sectioned, versioned, checksummed container as the graph
//! snapshots ([`icde_graph::snapshot`]) with payload kind
//! [`icde_graph::snapshot::KIND_INDEX`]. Because PR 4 flattened both the
//! per-vertex pre-computed data and the tree into struct-of-arrays form
//! ([`crate::aggregate::AggregateTable`]), the writer dumps each flat array
//! as one section and the loader serves every section as a zero-copy
//! [`icde_graph::snapshot::FlatVec`] view straight into the mapped (or
//! buffered) file — no JSON parsing, no per-node allocation, no memcpy, so
//! index load is O(1) in the table sizes. Incremental maintenance still
//! works on a loaded index: the first mutation of any array copies it out
//! of the file (whole-array copy-on-write via [`FlatVec::to_mut`]).
//!
//! [`FlatVec::to_mut`]: icde_graph::snapshot::FlatVec::to_mut
//!
//! # Sections (payload kind 2)
//!
//! | id | contents                                        | elements |
//! |----|-------------------------------------------------|----------|
//! | 1  | meta (see [`Meta`])                             | u64 × 9  |
//! | 2  | pre-selected thresholds `θ_1..θ_m`              | f64 × m  |
//! | 3  | per-edge supports                               | u32      |
//! | 4  | per-vertex signature words                      | u64      |
//! | 5  | per-vertex support bounds                       | u32      |
//! | 6  | per-vertex score bounds                         | f64      |
//! | 7  | per-vertex region sizes                         | u32      |
//! | 8  | tree `item_start`                               | u32      |
//! | 9  | tree item pool (leaf vertices / child node ids) | u32      |
//! | 10 | tree leaf mask                                  | u64      |
//! | 11 | per-node signature words                        | u64      |
//! | 12 | per-node support bounds                         | u32      |
//! | 13 | per-node score bounds                           | f64      |
//! | 14 | per-node region sizes                           | u32      |
//! | 15 | per-vertex seed-community score bounds          | f64      |

use crate::aggregate::AggregateTable;
use crate::index::CommunityIndex;
use crate::precompute::{PrecomputeConfig, PrecomputedData};
use icde_graph::snapshot::{
    LoadMode, Snapshot, SnapshotError, SnapshotResult, SnapshotWriter, KIND_INDEX,
};
use std::path::Path;

const SEC_META: u32 = 1;
const SEC_THRESHOLDS: u32 = 2;
const SEC_EDGE_SUPPORTS: u32 = 3;
const SEC_V_SIGS: u32 = 4;
const SEC_V_SUPPORTS: u32 = 5;
const SEC_V_SCORES: u32 = 6;
const SEC_V_REGION: u32 = 7;
const SEC_ITEM_START: u32 = 8;
const SEC_ITEM_POOL: u32 = 9;
const SEC_LEAF_MASK: u32 = 10;
const SEC_N_SIGS: u32 = 11;
const SEC_N_SUPPORTS: u32 = 12;
const SEC_N_SCORES: u32 = 13;
const SEC_N_REGION: u32 = 14;
const SEC_SEED_BOUNDS: u32 = 15;

/// Order of the `u64` meta words in section 1.
struct Meta {
    num_vertices: u64,
    root: u64,
    num_graph_vertices: u64,
    fanout: u64,
    leaf_capacity: u64,
    r_max: u64,
    signature_bits: u64,
    num_thresholds: u64,
    parallel: u64,
}

impl Meta {
    fn to_words(&self) -> [u64; 9] {
        [
            self.num_vertices,
            self.root,
            self.num_graph_vertices,
            self.fanout,
            self.leaf_capacity,
            self.r_max,
            self.signature_bits,
            self.num_thresholds,
            self.parallel,
        ]
    }

    fn from_words(words: &[u64]) -> SnapshotResult<Meta> {
        if words.len() != 9 {
            return Err(SnapshotError::Malformed(
                "index meta section must hold 9 words".to_string(),
            ));
        }
        Ok(Meta {
            num_vertices: words[0],
            root: words[1],
            num_graph_vertices: words[2],
            fanout: words[3],
            leaf_capacity: words[4],
            r_max: words[5],
            signature_bits: words[6],
            num_thresholds: words[7],
            parallel: words[8],
        })
    }
}

fn add_table(w: &mut SnapshotWriter, table: &AggregateTable, base: [u32; 4]) {
    w.add_u64s(base[0], table.raw_signatures());
    w.add_u32s(base[1], table.raw_supports());
    w.add_f64s(base[2], table.raw_scores());
    w.add_u32s(base[3], table.raw_region_sizes());
}

fn read_table(
    snap: &Snapshot,
    entities: usize,
    config: &PrecomputeConfig,
    base: [u32; 4],
) -> SnapshotResult<AggregateTable> {
    AggregateTable::from_raw(
        entities,
        config.r_max,
        config.signature_bits,
        config.thresholds.len(),
        snap.flat_u64s(base[0])?,
        snap.flat_u32s(base[1])?,
        snap.flat_f64s(base[2])?,
        snap.flat_u32s(base[3])?,
    )
    .map_err(SnapshotError::Malformed)
}

/// Serialises an index into a snapshot writer (exposed for tests).
pub(crate) fn index_snapshot_writer(index: &CommunityIndex) -> SnapshotWriter {
    let config = &index.precomputed.config;
    let (item_start, item_pool, leaf_mask) = index.tree_parts();
    let mut w = SnapshotWriter::new(KIND_INDEX);
    w.add_u64s(
        SEC_META,
        &Meta {
            num_vertices: index.precomputed.num_vertices() as u64,
            root: index.root() as u64,
            num_graph_vertices: index.num_graph_vertices() as u64,
            fanout: index.fanout() as u64,
            leaf_capacity: index.leaf_capacity() as u64,
            r_max: u64::from(config.r_max),
            signature_bits: config.signature_bits as u64,
            num_thresholds: config.thresholds.len() as u64,
            parallel: u64::from(config.parallel),
        }
        .to_words(),
    );
    w.add_f64s(SEC_THRESHOLDS, &config.thresholds);
    w.add_u32s(SEC_EDGE_SUPPORTS, &index.precomputed.edge_supports);
    add_table(
        &mut w,
        index.precomputed.table(),
        [SEC_V_SIGS, SEC_V_SUPPORTS, SEC_V_SCORES, SEC_V_REGION],
    );
    w.add_u32s(SEC_ITEM_START, item_start);
    w.add_u32s(SEC_ITEM_POOL, item_pool);
    w.add_u64s(SEC_LEAF_MASK, leaf_mask);
    add_table(
        &mut w,
        index.node_aggregates(),
        [SEC_N_SIGS, SEC_N_SUPPORTS, SEC_N_SCORES, SEC_N_REGION],
    );
    w.add_f64s(SEC_SEED_BOUNDS, index.precomputed.seed_bounds());
    w
}

/// Writes a binary snapshot of the index to `path` (crash-safe
/// write-then-rename).
pub fn write_index_snapshot<P: AsRef<Path>>(index: &CommunityIndex, path: P) -> SnapshotResult<()> {
    index_snapshot_writer(index).write_to(path)
}

/// Loads an index snapshot with [`LoadMode::Auto`].
pub fn read_index_snapshot<P: AsRef<Path>>(path: P) -> SnapshotResult<CommunityIndex> {
    read_index_snapshot_with(path, LoadMode::Auto)
}

/// Loads an index snapshot with an explicit load mode.
pub fn read_index_snapshot_with<P: AsRef<Path>>(
    path: P,
    mode: LoadMode,
) -> SnapshotResult<CommunityIndex> {
    let snap = Snapshot::open_with(path, mode)?;
    index_from_snapshot(&snap)
}

fn usize_from(v: u64, what: &str) -> SnapshotResult<usize> {
    usize::try_from(v).map_err(|_| SnapshotError::Malformed(format!("{what} overflows usize")))
}

/// Reconstructs a [`CommunityIndex`] from an already-opened snapshot (for
/// callers that sniffed the payload kind themselves).
pub fn index_from_snapshot(snap: &Snapshot) -> SnapshotResult<CommunityIndex> {
    snap.expect_kind(KIND_INDEX)?;
    let meta = Meta::from_words(&snap.u64s_vec(SEC_META)?)?;
    let thresholds = snap.flat_f64s(SEC_THRESHOLDS)?.as_slice().to_vec();
    if thresholds.len() != usize_from(meta.num_thresholds, "threshold count")? {
        return Err(SnapshotError::Malformed(
            "threshold section disagrees with the meta word".to_string(),
        ));
    }
    if thresholds.is_empty() || meta.r_max == 0 || meta.signature_bits == 0 {
        return Err(SnapshotError::Malformed(
            "index configuration dimensions must be positive".to_string(),
        ));
    }
    if !thresholds
        .windows(2)
        .all(|w| w[0] < w[1] && w[0].is_finite())
        || thresholds.iter().any(|t| !(0.0..1.0).contains(t))
    {
        return Err(SnapshotError::Malformed(
            "thresholds must be strictly increasing within [0, 1)".to_string(),
        ));
    }
    let config = PrecomputeConfig {
        r_max: u32::try_from(meta.r_max)
            .map_err(|_| SnapshotError::Malformed("r_max overflows u32".to_string()))?,
        thresholds,
        signature_bits: usize_from(meta.signature_bits, "signature width")?,
        parallel: meta.parallel != 0,
        // runtime knobs, not data: never persisted in the binary format
        num_threads: None,
        num_shards: None,
    };

    let num_vertices = usize_from(meta.num_vertices, "vertex count")?;
    let vertex_table = read_table(
        snap,
        num_vertices,
        &config,
        [SEC_V_SIGS, SEC_V_SUPPORTS, SEC_V_SCORES, SEC_V_REGION],
    )?;
    let edge_supports = snap.flat_u32s(SEC_EDGE_SUPPORTS)?;
    let seed_bounds = snap.flat_f64s(SEC_SEED_BOUNDS)?;
    let precomputed =
        PrecomputedData::from_table(config.clone(), vertex_table, edge_supports, seed_bounds)
            .map_err(SnapshotError::Malformed)?;

    let item_start = snap.flat_u32s(SEC_ITEM_START)?;
    let item_pool = snap.flat_u32s(SEC_ITEM_POOL)?;
    let leaf_mask = snap.flat_u64s(SEC_LEAF_MASK)?;
    let nodes = item_start.len().saturating_sub(1);
    let node_table = read_table(
        snap,
        nodes,
        &config,
        [SEC_N_SIGS, SEC_N_SUPPORTS, SEC_N_SCORES, SEC_N_REGION],
    )?;

    CommunityIndex::from_flat_parts(
        precomputed,
        item_start,
        item_pool,
        leaf_mask,
        node_table,
        usize_from(meta.root, "root id")?,
        usize_from(meta.num_graph_vertices, "graph vertex count")?,
        usize_from(meta.fanout, "fanout")?,
        usize_from(meta.leaf_capacity, "leaf capacity")?,
    )
    .map_err(SnapshotError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query::TopLQuery;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::{KeywordSet, SocialNetwork};

    fn build() -> (SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, 150, 8)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_fanout(4)
        .with_leaf_capacity(8)
        .build(&g);
        (g, index)
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("icde_index_snap_{}_{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_content_and_answers_on_both_paths() {
        let (g, index) = build();
        let path = temp("roundtrip.snap");
        write_index_snapshot(&index, &path).unwrap();
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
        let expected = TopLProcessor::new(&g, &index).run(&query).unwrap();
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let back = read_index_snapshot_with(&path, mode).unwrap();
            assert_eq!(back.content_fingerprint(), index.content_fingerprint());
            assert_eq!(back.node_count(), index.node_count());
            assert_eq!(back.height(), index.height());
            let answer = TopLProcessor::new(&g, &back).run(&query).unwrap();
            assert_eq!(answer.communities.len(), expected.communities.len());
            for (a, b) in answer.communities.iter().zip(expected.communities.iter()) {
                assert_eq!(a.vertices, b.vertices);
                assert_eq!(a.influential_score.to_bits(), b.influential_score.to_bits());
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn graph_snapshot_is_rejected_as_index() {
        let (g, _) = build();
        let path = temp("wrong_kind.snap");
        icde_graph::snapshot::write_graph_snapshot(&g, &path).unwrap();
        assert!(matches!(
            read_index_snapshot(&path),
            Err(SnapshotError::WrongKind { .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupted_index_snapshot_is_rejected() {
        let (_, index) = build();
        let path = temp("corrupt.snap");
        write_index_snapshot(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_index_snapshot(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // truncation at several points
        let full = {
            write_index_snapshot(&index, &path).unwrap();
            std::fs::read(&path).unwrap()
        };
        for cut in [0, 7, 31, full.len() / 3, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read_index_snapshot(&path).is_err(), "prefix of {cut} bytes");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn maintenance_keeps_working_on_a_reloaded_index() {
        // a snapshot-loaded index owns its tables, so incremental
        // maintenance must be able to patch rows in place
        let (g, index) = build();
        let path = temp("maintenance.snap");
        write_index_snapshot(&index, &path).unwrap();
        let back = read_index_snapshot(&path).unwrap();
        let (u, v) = {
            let mut found = None;
            'outer: for u in g.vertices() {
                for v in g.vertices() {
                    if u < v && !g.contains_edge(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            found.expect("graph is not complete")
        };
        let g2 = g.with_edge_inserted(u, v, 0.55, 0.55).unwrap();
        let (updated, refreshed) =
            crate::maintenance::update_index_after_edge_insertion(back, &g2, u, v, None);
        assert!(refreshed > 0);
        assert_eq!(updated.num_graph_vertices(), g2.num_vertices());
        let _ = std::fs::remove_file(path);
    }
}
