//! Pruning-power instrumentation.
//!
//! The ablation study (Figure 4) reports how many candidate communities each
//! pruning rule eliminates and how that affects wall-clock time. Every query
//! processor therefore carries a [`PruningStats`] record that counts, per
//! rule, the index entries and candidate centres that were discarded without
//! refinement.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters describing how much work one query avoided (or performed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningStats {
    /// Index entries (non-leaf) pruned by the keyword rule (Lemma 5).
    pub index_keyword_pruned: usize,
    /// Index entries pruned by the support rule (Lemma 6).
    pub index_support_pruned: usize,
    /// Index entries pruned by the influential-score rule (Lemma 7).
    pub index_score_pruned: usize,
    /// Candidate centres (leaf entries) pruned by the keyword rule (Lemma 1).
    pub candidate_keyword_pruned: usize,
    /// Candidate centres pruned by the support rule (Lemma 2).
    pub candidate_support_pruned: usize,
    /// Candidate centres pruned by the influential-score rule (Lemma 4).
    pub candidate_score_pruned: usize,
    /// Candidate centres whose r-hop region produced no valid seed community
    /// (radius / truss / keyword constraints failed during refinement).
    pub candidates_without_community: usize,
    /// Candidate centres fully refined (seed community extracted and its
    /// exact influential score computed).
    pub candidates_refined: usize,
    /// Remaining heap entries skipped by the early-termination test
    /// (Algorithm 3 lines 7–8).
    pub early_terminated_entries: usize,
    /// Diversity-score re-computations avoided by the lazy-greedy pruning
    /// rule (Lemma 9) during DTopL-ICDE refinement.
    pub diversity_pruned: usize,
}

impl PruningStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of candidate communities pruned before refinement (the
    /// quantity plotted in Figure 4(a)).
    pub fn total_pruned_candidates(&self) -> usize {
        self.candidate_keyword_pruned
            + self.candidate_support_pruned
            + self.candidate_score_pruned
            + self.early_terminated_entries
    }

    /// Total number of index entries pruned at non-leaf level.
    pub fn total_pruned_index_entries(&self) -> usize {
        self.index_keyword_pruned + self.index_support_pruned + self.index_score_pruned
    }

    /// Entries pruned by the keyword rule at any level.
    pub fn keyword_pruned(&self) -> usize {
        self.index_keyword_pruned + self.candidate_keyword_pruned
    }

    /// Entries pruned by the support rule at any level.
    pub fn support_pruned(&self) -> usize {
        self.index_support_pruned + self.candidate_support_pruned
    }

    /// Entries pruned by the influential-score rule at any level (including
    /// early termination, which is score-based).
    pub fn score_pruned(&self) -> usize {
        self.index_score_pruned + self.candidate_score_pruned + self.early_terminated_entries
    }
}

impl AddAssign for PruningStats {
    fn add_assign(&mut self, other: Self) {
        self.index_keyword_pruned += other.index_keyword_pruned;
        self.index_support_pruned += other.index_support_pruned;
        self.index_score_pruned += other.index_score_pruned;
        self.candidate_keyword_pruned += other.candidate_keyword_pruned;
        self.candidate_support_pruned += other.candidate_support_pruned;
        self.candidate_score_pruned += other.candidate_score_pruned;
        self.candidates_without_community += other.candidates_without_community;
        self.candidates_refined += other.candidates_refined;
        self.early_terminated_entries += other.early_terminated_entries;
        self.diversity_pruned += other.diversity_pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_rules() {
        let stats = PruningStats {
            index_keyword_pruned: 1,
            index_support_pruned: 2,
            index_score_pruned: 3,
            candidate_keyword_pruned: 10,
            candidate_support_pruned: 20,
            candidate_score_pruned: 30,
            candidates_without_community: 4,
            candidates_refined: 5,
            early_terminated_entries: 7,
            diversity_pruned: 6,
        };
        assert_eq!(stats.total_pruned_candidates(), 67);
        assert_eq!(stats.total_pruned_index_entries(), 6);
        assert_eq!(stats.keyword_pruned(), 11);
        assert_eq!(stats.support_pruned(), 22);
        assert_eq!(stats.score_pruned(), 40);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = PruningStats {
            candidates_refined: 2,
            ..Default::default()
        };
        let b = PruningStats {
            candidates_refined: 3,
            candidate_keyword_pruned: 1,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.candidates_refined, 5);
        assert_eq!(a.candidate_keyword_pruned, 1);
    }

    #[test]
    fn default_is_zero() {
        let stats = PruningStats::new();
        assert_eq!(stats.total_pruned_candidates(), 0);
        assert_eq!(stats.total_pruned_index_entries(), 0);
    }
}
