//! Pruning-power instrumentation.
//!
//! The ablation study (Figure 4) reports how many candidate communities each
//! pruning rule eliminates and how that affects wall-clock time. Every query
//! processor therefore carries a [`PruningStats`] record that counts, per
//! rule, the index entries and candidate centres that were discarded without
//! refinement.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters describing how much work one query avoided (or performed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningStats {
    /// Index entries (non-leaf) pruned by the keyword rule (Lemma 5).
    pub index_keyword_pruned: usize,
    /// Index entries pruned by the support rule (Lemma 6).
    pub index_support_pruned: usize,
    /// Index entries pruned by the influential-score rule (Lemma 7).
    pub index_score_pruned: usize,
    /// Candidate centres (leaf entries) pruned by the keyword rule (Lemma 1).
    pub candidate_keyword_pruned: usize,
    /// Candidate centres pruned by the support rule (Lemma 2).
    pub candidate_support_pruned: usize,
    /// Candidate centres pruned by the influential-score rule (Lemma 4).
    pub candidate_score_pruned: usize,
    /// Candidate centres whose r-hop region produced no valid seed community
    /// (radius / truss / keyword constraints failed during refinement).
    pub candidates_without_community: usize,
    /// Candidate centres fully refined (seed community extracted and its
    /// exact influential score computed).
    pub candidates_refined: usize,
    /// Heap entries *abandoned in the queue* when the early-termination test
    /// fired (Algorithm 3 lines 7–8) — entries that were never popped.
    pub early_terminated_entries: usize,
    /// Popped entries whose key triggered early termination (at most one per
    /// traversal; kept separate from [`early_terminated_entries`] so the two
    /// populations — inspected vs never reached — stay distinguishable).
    ///
    /// [`early_terminated_entries`]: PruningStats::early_terminated_entries
    pub early_termination_pops: usize,
    /// Diversity-score re-computations avoided by the lazy-greedy pruning
    /// rule (Lemma 9) during DTopL-ICDE refinement.
    pub diversity_pruned: usize,
    /// Exact refinements actually *expanded* by the progressive kernel —
    /// `extract_seed_community` + exact `influenced_community` runs.
    /// `candidates_refined` additionally counts refinements answered from the
    /// kernel's community cache, so `exact_verifications ≤
    /// candidates_refined` always holds; the eager path performs every
    /// refinement for real and keeps the two equal.
    pub exact_verifications: usize,
    /// Candidate bounds tightened cheaply (seed-community bound beneath the
    /// region bound) without running an exact verification.
    pub bound_tightenings: usize,
    /// Entries (index nodes and candidates) popped off the best-first heap.
    pub heap_pops: usize,
}

impl PruningStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of candidate communities pruned before refinement (the
    /// quantity plotted in Figure 4(a)).
    pub fn total_pruned_candidates(&self) -> usize {
        self.candidate_keyword_pruned
            + self.candidate_support_pruned
            + self.candidate_score_pruned
            + self.early_terminated_entries
            + self.early_termination_pops
    }

    /// Total number of index entries pruned at non-leaf level.
    pub fn total_pruned_index_entries(&self) -> usize {
        self.index_keyword_pruned + self.index_support_pruned + self.index_score_pruned
    }

    /// Entries pruned by the keyword rule at any level.
    pub fn keyword_pruned(&self) -> usize {
        self.index_keyword_pruned + self.candidate_keyword_pruned
    }

    /// Entries pruned by the support rule at any level.
    pub fn support_pruned(&self) -> usize {
        self.index_support_pruned + self.candidate_support_pruned
    }

    /// Entries pruned by the influential-score rule at any level (including
    /// early termination, which is score-based).
    pub fn score_pruned(&self) -> usize {
        self.index_score_pruned
            + self.candidate_score_pruned
            + self.early_terminated_entries
            + self.early_termination_pops
    }

    /// Folds another counter set into this one, field by field.
    ///
    /// The serving worker pool accumulates one `PruningStats` per worker
    /// thread and merges them after the run; because every field is a plain
    /// sum, the merged result is independent of worker count and merge order
    /// — N workers' merged counters equal the sequential run's over the same
    /// queries.
    pub fn merge(&mut self, other: &PruningStats) {
        *self += *other;
    }
}

/// Multi-line human-readable counter breakdown (the CLI's `--explain`
/// output).
impl std::fmt::Display for PruningStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "index entries pruned:    {} keyword, {} support, {} score",
            self.index_keyword_pruned, self.index_support_pruned, self.index_score_pruned
        )?;
        writeln!(
            f,
            "candidates pruned:       {} keyword, {} support, {} score",
            self.candidate_keyword_pruned,
            self.candidate_support_pruned,
            self.candidate_score_pruned
        )?;
        writeln!(
            f,
            "early termination:       {} abandoned in heap, {} trigger pops",
            self.early_terminated_entries, self.early_termination_pops
        )?;
        writeln!(
            f,
            "refinement:              {} refined, {} exact verifications, {} without community",
            self.candidates_refined, self.exact_verifications, self.candidates_without_community
        )?;
        write!(
            f,
            "kernel:                  {} heap pops, {} bound tightenings, {} diversity pruned",
            self.heap_pops, self.bound_tightenings, self.diversity_pruned
        )
    }
}

impl AddAssign for PruningStats {
    fn add_assign(&mut self, other: Self) {
        self.index_keyword_pruned += other.index_keyword_pruned;
        self.index_support_pruned += other.index_support_pruned;
        self.index_score_pruned += other.index_score_pruned;
        self.candidate_keyword_pruned += other.candidate_keyword_pruned;
        self.candidate_support_pruned += other.candidate_support_pruned;
        self.candidate_score_pruned += other.candidate_score_pruned;
        self.candidates_without_community += other.candidates_without_community;
        self.candidates_refined += other.candidates_refined;
        self.early_terminated_entries += other.early_terminated_entries;
        self.early_termination_pops += other.early_termination_pops;
        self.diversity_pruned += other.diversity_pruned;
        self.exact_verifications += other.exact_verifications;
        self.bound_tightenings += other.bound_tightenings;
        self.heap_pops += other.heap_pops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_rules() {
        let stats = PruningStats {
            index_keyword_pruned: 1,
            index_support_pruned: 2,
            index_score_pruned: 3,
            candidate_keyword_pruned: 10,
            candidate_support_pruned: 20,
            candidate_score_pruned: 30,
            candidates_without_community: 4,
            candidates_refined: 5,
            early_terminated_entries: 7,
            early_termination_pops: 1,
            diversity_pruned: 6,
            exact_verifications: 4,
            bound_tightenings: 9,
            heap_pops: 50,
        };
        assert_eq!(stats.total_pruned_candidates(), 68);
        assert_eq!(stats.total_pruned_index_entries(), 6);
        assert_eq!(stats.keyword_pruned(), 11);
        assert_eq!(stats.support_pruned(), 22);
        assert_eq!(stats.score_pruned(), 41);
    }

    #[test]
    fn display_breaks_down_every_counter() {
        let stats = PruningStats {
            index_keyword_pruned: 1,
            candidate_score_pruned: 30,
            early_terminated_entries: 7,
            early_termination_pops: 1,
            candidates_refined: 5,
            exact_verifications: 4,
            bound_tightenings: 9,
            heap_pops: 50,
            ..Default::default()
        };
        let text = stats.to_string();
        for needle in [
            "1 keyword",
            "30 score",
            "7 abandoned in heap",
            "1 trigger pops",
            "5 refined",
            "4 exact verifications",
            "50 heap pops",
            "9 bound tightenings",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = PruningStats {
            candidates_refined: 2,
            ..Default::default()
        };
        let b = PruningStats {
            candidates_refined: 3,
            candidate_keyword_pruned: 1,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.candidates_refined, 5);
        assert_eq!(a.candidate_keyword_pruned, 1);
    }

    #[test]
    fn merge_is_order_and_partition_independent() {
        let parts = [
            PruningStats {
                candidates_refined: 2,
                heap_pops: 7,
                ..Default::default()
            },
            PruningStats {
                index_score_pruned: 4,
                heap_pops: 1,
                ..Default::default()
            },
            PruningStats {
                candidate_keyword_pruned: 3,
                exact_verifications: 5,
                ..Default::default()
            },
        ];
        let mut forward = PruningStats::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = PruningStats::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.heap_pops, 8);
        assert_eq!(forward.candidates_refined, 2);
        assert_eq!(forward.exact_verifications, 5);
    }

    #[test]
    fn default_is_zero() {
        let stats = PruningStats::new();
        assert_eq!(stats.total_pruned_candidates(), 0);
        assert_eq!(stats.total_pruned_index_entries(), 0);
    }
}
