//! Incremental index maintenance under graph updates.
//!
//! The paper treats the index as a static, offline-built structure; keeping it
//! fresh as the social network evolves is listed as future work. This module
//! provides the first step of that: after an edge insertion (a new friendship
//! / co-purchase), only the vertices whose r_max-hop neighbourhood can have
//! changed need their aggregates recomputed — everything farther away keeps
//! identical regions, supports and score bounds. The tree is then rebuilt
//! over the patched per-vertex data, which is cheap compared to the
//! pre-computation itself.
//!
//! The maintenance is *exact*: the refreshed index is indistinguishable from
//! one built from scratch on the updated graph (the tests assert aggregate
//! equality and query-answer equality), it just avoids re-running Algorithm 2
//! for the vast majority of vertices.

use crate::index::{CommunityIndex, IndexBuilder};
use crate::precompute::{MaintenanceArena, PrecomputeConfig, PrecomputedData};
use icde_graph::traversal::hop_subgraph_with;
use icde_graph::workspace::with_thread_workspace;
use icde_graph::{SocialNetwork, VertexId};
use std::collections::HashSet;

/// The number of extra hops (beyond `r_max`) an edge insertion can influence:
/// a score expansion only crosses the new edge if it reaches one of its
/// endpoints with probability ≥ θ_1, and every hop multiplies the probability
/// by at most the largest edge weight `p_max`, so the reach beyond the r-hop
/// region is bounded by `⌊ln θ_1 / ln p_max⌋` hops.
///
/// Returns `None` when no finite bound exists (some edge has probability 1.0
/// or the smallest pre-selected threshold is 0) — callers should then refresh
/// every vertex.
pub fn required_influence_slack(g: &SocialNetwork, config: &PrecomputeConfig) -> Option<u32> {
    let theta_min = config
        .thresholds
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mut p_max = 0.0f64;
    for (e, u, v) in g.edges() {
        p_max = p_max
            .max(g.directed_weight(e, u))
            .max(g.directed_weight(e, v));
    }
    influence_slack_bound(theta_min, p_max)
}

/// The slack bound for explicit `theta_min` / `p_max` values (the formula
/// behind [`required_influence_slack`]). Streaming callers use this to fold
/// the weights of *pending* insertions into `p_max` before any of them is
/// applied.
pub fn influence_slack_bound(theta_min: f64, p_max: f64) -> Option<u32> {
    if theta_min <= 0.0 || theta_min.is_nan() || p_max >= 1.0 {
        return None;
    }
    if p_max <= 0.0 {
        return Some(0);
    }
    Some((theta_min.ln() / p_max.ln()).floor().max(0.0) as u32)
}

/// The set of vertices whose pre-computed aggregates may change when the edge
/// `{u, v}` is inserted: everything within `r_max` hops of either endpoint in
/// the *updated* graph.
///
/// A vertex `w` farther than `r_max` from both endpoints cannot have `u`, `v`
/// or the new edge inside `hop(w, r_max)`, and the influence expansion from
/// `hop(w, r)` is likewise truncated at probability ≥ θ_1 along paths that
/// would have to cross the new edge — but since the *region* is unchanged and
/// influence may still flow through the new edge beyond the region, we
/// conservatively also refresh vertices whose score expansion could touch the
/// endpoints. In practice the θ-floor bounds that reach, so the r_max ball is
/// extended by the configured `influence_slack` hops.
pub fn affected_vertices(
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    r_max: u32,
    influence_slack: u32,
) -> HashSet<VertexId> {
    let mut buf = Vec::new();
    affected_vertices_into(g, u, v, r_max, influence_slack, &mut buf);
    buf.into_iter().collect()
}

/// [`affected_vertices`] with a caller-owned output buffer: the two endpoint
/// balls are **appended** to `out` (which is *not* cleared and *not*
/// deduplicated — the two balls usually overlap heavily, and batch callers
/// sort-dedup once per batch, counting the overlap as a maintenance
/// statistic). The traversal runs through the thread workspace, so the
/// steady-state path performs no allocation beyond `out`'s growth.
pub fn affected_vertices_into(
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    r_max: u32,
    influence_slack: u32,
    out: &mut Vec<VertexId>,
) {
    with_thread_workspace(|ws| {
        endpoint_balls_into(ws, g, u, v, r_max + influence_slack, out);
    });
}

/// [`affected_vertices_into`] through a caller-owned [`MaintenanceArena`]:
/// the ball discovery reuses the arena's already-resident traversal pages
/// (the same ones the recompute re-stamps per call), so the streaming
/// maintainer touches no thread-local state and allocates nothing per
/// update.
pub fn affected_vertices_with(
    arena: &mut MaintenanceArena,
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    r_max: u32,
    influence_slack: u32,
    out: &mut Vec<VertexId>,
) {
    endpoint_balls_into(
        arena.traversal_workspace(),
        g,
        u,
        v,
        r_max + influence_slack,
        out,
    );
}

fn endpoint_balls_into(
    ws: &mut icde_graph::workspace::TraversalWorkspace,
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    radius: u32,
    out: &mut Vec<VertexId>,
) {
    for endpoint in [u, v] {
        out.extend(hop_subgraph_with(ws, g, endpoint, radius).iter());
    }
}

/// Patches `data` after the edge `{u, v}` has been inserted into `g`
/// (the graph must already contain the new edge). Returns the number of
/// vertices whose aggregates were recomputed.
pub fn refresh_after_edge_insertion(
    g: &SocialNetwork,
    data: &mut PrecomputedData,
    u: VertexId,
    v: VertexId,
    influence_slack: Option<u32>,
) -> usize {
    // O(deg u + deg v) incremental support patch — the inserted edge only
    // changes supports of edges in the triangles it closes.
    let e = g
        .edge_between(u, v)
        .expect("graph must already contain the inserted edge");
    data.patch_supports_after_insertion(g, u, v, e);
    let slack = influence_slack
        .or_else(|| required_influence_slack(g, &data.config))
        .unwrap_or(u32::MAX / 2);
    let affected = affected_vertices(g, u, v, data.config.r_max, slack.min(u32::MAX / 2));
    // one batch: the engine builds its flat signature table and traversal
    // scratch once for the whole refresh instead of once per vertex
    let mut batch: Vec<VertexId> = affected.iter().copied().collect();
    batch.sort_unstable();
    data.recompute_vertices(g, &batch);
    batch.len()
}

/// Rebuilds a [`CommunityIndex`] after an edge insertion by patching only the
/// affected vertices' aggregates and re-aggregating the tree.
///
/// `influence_slack` controls how far beyond `r_max` the refresh reaches to
/// account for influence flowing through the new edge; pass `None` to derive
/// the exact bound from the graph's largest edge probability and the smallest
/// pre-selected threshold ([`required_influence_slack`]).
pub fn update_index_after_edge_insertion(
    index: CommunityIndex,
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    influence_slack: Option<u32>,
) -> (CommunityIndex, usize) {
    let fanout = index.fanout();
    let leaf_capacity = index.leaf_capacity();
    let mut data = index.precomputed;
    let refreshed = refresh_after_edge_insertion(g, &mut data, u, v, influence_slack);
    let rebuilt = IndexBuilder::new(data.config.clone())
        .with_fanout(fanout)
        .with_leaf_capacity(leaf_capacity)
        .build_from_precomputed(g, data);
    (rebuilt, refreshed)
}

/// Rebuilds a [`CommunityIndex`] after an edge **deletion**: removes
/// `{u, v}` from `g_before` (tombstoning it in the delta overlay via
/// [`SocialNetwork::with_edge_removed`] — every other edge keeps its id),
/// patches only the affected vertices' aggregates and re-aggregates the
/// tree. Returns the updated graph, the refreshed index and the number of
/// vertices recomputed.
///
/// The affected set is computed on the **pre-deletion** graph: a vertex whose
/// old region reached the edge only *through* the edge is still within
/// `r_max + slack` hops of an endpoint there, while in the updated graph it
/// may no longer be (the removed edge can be a bridge). The slack derived
/// from the pre-deletion `p_max` is conservative for the post-deletion graph,
/// whose largest probability can only be ≤.
pub fn update_index_after_edge_deletion(
    index: CommunityIndex,
    g_before: &SocialNetwork,
    u: VertexId,
    v: VertexId,
    influence_slack: Option<u32>,
) -> icde_graph::error::GraphResult<(SocialNetwork, CommunityIndex, usize)> {
    let (g_after, removed) = g_before.with_edge_removed(u, v)?;
    let fanout = index.fanout();
    let leaf_capacity = index.leaf_capacity();
    let mut data = index.precomputed;
    // The removed id is tombstoned, not shifted: every other edge keeps its
    // id, so the supports only change in the triangles the edge closed.
    data.patch_supports_after_removal(&g_after, u, v, removed);
    let slack = influence_slack
        .or_else(|| required_influence_slack(g_before, &data.config))
        .unwrap_or(u32::MAX / 2);
    let affected = affected_vertices(g_before, u, v, data.config.r_max, slack.min(u32::MAX / 2));
    let mut batch: Vec<VertexId> = affected.iter().copied().collect();
    batch.sort_unstable();
    data.recompute_vertices(&g_after, &batch);
    let rebuilt = IndexBuilder::new(data.config.clone())
        .with_fanout(fanout)
        .with_leaf_capacity(leaf_capacity)
        .build_from_precomputed(&g_after, data);
    Ok((g_after, rebuilt, affected.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::PrecomputeConfig;
    use crate::query::TopLQuery;
    use crate::topl::TopLProcessor;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::traversal::hop_subgraph;
    use icde_graph::KeywordSet;

    fn setup() -> (SocialNetwork, CommunityIndex) {
        let g = DatasetSpec::new(DatasetKind::Uniform, 180, 23)
            .with_keyword_domain(10)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g);
        (g, index)
    }

    /// Finds a vertex pair that is not yet connected.
    fn missing_edge(g: &SocialNetwork) -> (VertexId, VertexId) {
        for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.contains_edge(u, v) {
                    return (u, v);
                }
            }
        }
        panic!("graph is complete");
    }

    #[test]
    fn affected_set_contains_both_endpoints_neighbourhoods() {
        let (g, index) = setup();
        let (u, v) = missing_edge(&g);
        let g = g.with_edge_inserted(u, v, 0.55, 0.55).unwrap();
        let affected = affected_vertices(&g, u, v, index.r_max(), 0);
        assert!(affected.contains(&u) && affected.contains(&v));
        for w in hop_subgraph(&g, u, index.r_max()).iter() {
            assert!(affected.contains(&w));
        }
        assert!(affected.len() < g.num_vertices(), "refresh must be partial");
    }

    #[test]
    fn incremental_refresh_matches_full_rebuild() {
        let (g, index) = setup();
        let (u, v) = missing_edge(&g);
        let g = g.with_edge_inserted(u, v, 0.55, 0.55).unwrap();

        let (incremental, refreshed) = update_index_after_edge_insertion(index, &g, u, v, None);
        assert!(refreshed > 0);

        let from_scratch = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g);

        // identical query answers
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let a = TopLProcessor::new(&g, &incremental).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &from_scratch).run(&query).unwrap();
        assert_eq!(a.communities.len(), b.communities.len());
        for (x, y) in a.communities.iter().zip(b.communities.iter()) {
            assert_eq!(x.vertices, y.vertices);
            assert!((x.influential_score - y.influential_score).abs() < 1e-9);
        }

        // identical structural aggregates (supports, signatures, regions) for
        // every vertex; score bounds agree up to float summation order
        for w in g.vertices() {
            for r in 1..=incremental.r_max() {
                let inc = incremental.precomputed.aggregate(w, r);
                let full = from_scratch.precomputed.aggregate(w, r);
                assert_eq!(
                    inc.support_upper_bound, full.support_upper_bound,
                    "{w} r={r}"
                );
                assert_eq!(inc.keyword_signature, full.keyword_signature, "{w} r={r}");
                assert_eq!(inc.region_size, full.region_size, "{w} r={r}");
                for (a, b) in inc
                    .score_upper_bounds
                    .iter()
                    .zip(full.score_upper_bounds.iter())
                {
                    assert!((a - b).abs() < 1e-6, "{w} r={r}");
                }
            }
        }
    }

    #[test]
    fn incremental_deletion_matches_full_rebuild() {
        let (g_before, _) = setup();
        // delete an edge that exists; rebuild the index incrementally
        let (_, u, v) = g_before.edges().next().expect("graph has edges");
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g_before);

        let (g_after, incremental, refreshed) =
            update_index_after_edge_deletion(index, &g_before, u, v, None).unwrap();
        assert!(refreshed > 0);
        assert_eq!(g_after.num_edges(), g_before.num_edges() - 1);
        assert!(!g_after.contains_edge(u, v));

        let from_scratch = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_leaf_capacity(8)
        .build(&g_after);

        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5);
        let a = TopLProcessor::new(&g_after, &incremental)
            .run(&query)
            .unwrap();
        let b = TopLProcessor::new(&g_after, &from_scratch)
            .run(&query)
            .unwrap();
        assert_eq!(a.communities.len(), b.communities.len());
        for (x, y) in a.communities.iter().zip(b.communities.iter()) {
            assert_eq!(x.vertices, y.vertices);
            assert!((x.influential_score - y.influential_score).abs() < 1e-9);
        }

        for w in g_after.vertices() {
            for r in 1..=incremental.r_max() {
                let inc = incremental.precomputed.aggregate(w, r);
                let full = from_scratch.precomputed.aggregate(w, r);
                assert_eq!(
                    inc.support_upper_bound, full.support_upper_bound,
                    "{w} r={r}"
                );
                assert_eq!(inc.keyword_signature, full.keyword_signature, "{w} r={r}");
                assert_eq!(inc.region_size, full.region_size, "{w} r={r}");
                for (a, b) in inc
                    .score_upper_bounds
                    .iter()
                    .zip(full.score_upper_bounds.iter())
                {
                    assert!((a - b).abs() < 1e-6, "{w} r={r}");
                }
            }
        }
    }

    #[test]
    fn refresh_touches_only_a_fraction_on_larger_graphs() {
        let g0 = DatasetSpec::new(DatasetKind::Uniform, 600, 4)
            .with_keyword_domain(10)
            .generate();
        let (u, v) = missing_edge(&g0);
        let mut data = PrecomputedData::compute(
            &g0,
            PrecomputeConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let g = g0.with_edge_inserted(u, v, 0.55, 0.55).unwrap();
        let refreshed = refresh_after_edge_insertion(&g, &mut data, u, v, Some(0));
        assert!(
            refreshed < g.num_vertices() / 2,
            "refreshed {refreshed} of {}",
            g.num_vertices()
        );
    }
}
