//! # topl-icde — Top-L Most Influential Community Detection
//!
//! Facade crate re-exporting the whole TopL-ICDE workspace behind one
//! dependency. It implements the ICDE 2024 paper *"Top-L Most Influential
//! Community Detection Over Social Networks"*:
//!
//! * [`graph`] — attributed, weighted social-network store, generators, I/O,
//! * [`truss`] — triangle/support computation, k-truss and k-core machinery,
//! * [`influence`] — MIA propagation model, influenced communities,
//!   influential and diversity scores,
//! * [`core`] — the paper's contribution: pruning rules, offline
//!   pre-computation, the tree index, online TopL-ICDE processing
//!   (Algorithm 3), and the DTopL-ICDE greedy variant (Algorithm 4).
//!
//! ## Quickstart
//!
//! ```
//! use topl_icde::prelude::*;
//!
//! // Generate a small synthetic social network (Uniform keywords).
//! let graph = DatasetSpec::new(DatasetKind::Uniform, 300, 42).generate();
//!
//! // Build the offline index once...
//! let index = IndexBuilder::new(PrecomputeConfig::default())
//!     .build(&graph);
//!
//! // ...then answer TopL-ICDE queries online.
//! let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 4, 2, 0.2, 5);
//! let answers = TopLProcessor::new(&graph, &index).run(&query).expect("valid query");
//! for community in &answers.communities {
//!     println!("center {} score {:.3}", community.center, community.influential_score);
//! }
//! ```

pub use icde_core as core;
pub use icde_graph as graph;
pub use icde_influence as influence;
pub use icde_truss as truss;

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use icde_core::dtopl::{DTopLProcessor, DTopLStrategy};
    pub use icde_core::index::{CommunityIndex, IndexBuilder};
    pub use icde_core::precompute::PrecomputeConfig;
    pub use icde_core::query::TopLQuery;
    pub use icde_core::seed::SeedCommunity;
    pub use icde_core::topl::{TopLAnswer, TopLProcessor};
    pub use icde_graph::generators::{DatasetKind, DatasetSpec};
    pub use icde_graph::{
        GraphBuilder, Keyword, KeywordSet, SocialNetwork, TraversalWorkspace, VertexId,
    };
    pub use icde_influence::{InfluenceConfig, InfluenceEvaluator};
}
