//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace ships a
//! small data-model-compatible subset of serde: a self-describing [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and derive macros (in the sibling `serde_derive` shim) covering the struct
//! and enum shapes this repository uses. The JSON front-end lives in the
//! `serde_json` shim.
//!
//! Compatibility notes (matching real `serde_json` semantics where it
//! matters for round-trips):
//! * structs serialise to objects, newtype structs to their inner value,
//! * enums use external tagging: unit variants become strings, data variants
//!   become single-key objects,
//! * map keys are stringified (integer keys round-trip through strings),
//! * missing `Option` fields deserialise to `None`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// A parsed, self-describing data tree (the shim's equivalent of
/// `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object representation.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error with a human-readable path context.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support function for derived `Deserialize` impls: reads field `name` of
/// the object `v`, treating a missing field as `Null` (so `Option` fields
/// default to `None`, as with real serde).
pub fn __de_field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => {
            let field = v.get(name).unwrap_or(&Value::Null);
            T::from_value(field).map_err(|e| DeError(format!("{ty}.{name}: {e}")))
        }
        other => Err(DeError(format!(
            "{ty}: expected object, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(u)
                    .map_err(|_| DeError(format!("integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f)
                        if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(i)
                    .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's representation of Duration.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = __de_field::<u64>(v, "Duration", "secs")?;
        let nanos = __de_field::<u32>(v, "Duration", "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("fixed-size array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------------

/// Keys usable in JSON objects. Integer keys are stringified, matching
/// `serde_json`'s behaviour for integer-keyed maps.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>()
                    .map_err(|_| DeError(format!("invalid {} map key: {key:?}", stringify!($t))))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}
