//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Serialises the shim [`serde::Value`] tree to JSON text (compact or
//! pretty) and parses JSON text back. Covers the full JSON grammar —
//! escapes, `\uXXXX` with surrogate pairs, nested containers — plus the
//! usual serde_json restrictions: non-finite floats are a serialisation
//! error, and integer precision is preserved through dedicated
//! `Int`/`UInt` variants rather than routing everything through `f64`.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// JSON (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Converts `value` into the self-describing [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialises a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Deserialises a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialise non-finite float {f}")));
            }
            // `{}` on f64 is the shortest representation that round-trips.
            // Integral floats get a trailing `.0` (as with real serde_json)
            // so the parser re-types them as floats — preserving value
            // identity for cases like -0.0, which would otherwise re-parse
            // as the integer 0.
            let text = f.to_string();
            if text.contains(['.', 'e', 'E']) {
                out.push_str(&text);
            } else {
                out.push_str(&text);
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            write_newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1)?;
            }
            write_newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Recursion guard: JSON nested deeper than this is rejected rather than
/// risking a stack overflow.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect `\uXXXX` low surrogate next.
                    if !self.consume_literal("\\u") {
                        return Err(self.error("expected low surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?);
            }
            _ => return Err(self.error("invalid escape character")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}
