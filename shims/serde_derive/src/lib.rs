//! Vendored minimal stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (`to_value` / `from_value` over `serde::Value`). Uses only the
//! compiler-provided `proc_macro` API — no `syn`/`quote` — so it supports
//! exactly the item shapes this workspace uses:
//!
//! * structs with named fields,
//! * unit and tuple structs (newtype structs serialise transparently),
//! * enums whose variants are unit, tuple, or struct-like (externally
//!   tagged, like real serde),
//! * no generics, no `#[serde(...)]` attributes.
//!
//! Anything outside that subset fails loudly at derive time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    data: Data,
}

enum Data {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (doc comments etc.) and visibility.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // optional pub(crate) / pub(super) restriction
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde shim derive: unexpected token `{s}` before struct/enum keyword");
            }
            other => panic!("serde shim derive: unexpected input {other:?}"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let data = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        }
    };

    Input { name, data }
}

/// Parses `name: Type, ...` pairs, returning field names. Tracks `<`/`>`
/// depth so commas inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde shim derive: unexpected token in fields: {other:?}"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => saw_tokens = true,
            },
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde shim derive: unexpected token in variants: {other:?}"),
            }
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant, then the trailing comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Data::NamedStruct(fields) => serialize_named_object(fields, "self.", "&"),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inner = serialize_named_object(fields, "", "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// `Value::Object(vec![("f", to_value(<ref><prefix>f)), ...])`
fn serialize_named_object(fields: &[String], prefix: &str, reference: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value({reference}{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Data::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"array of {n} elements\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Data::NamedStruct(fields) => {
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                deserialize_named_fields(name, fields, "__v")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{vname}({items})),\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                     \"array of {arity} elements\", other)),\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let variant_path = format!("{name}::{vname}");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({variant_path} {{ {} }}),\n",
                            deserialize_named_fields(&variant_path, fields, "__inner")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

/// `f: __de_field(src, "Ty", "f")?, ...`
fn deserialize_named_fields(type_label: &str, fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::__de_field({source}, \"{type_label}\", \"{f}\")?,"))
        .collect::<Vec<_>>()
        .join(" ")
}
