//! Vendored minimal stand-in for the `rand` 0.8 crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`], and
//! [`seq::index::sample`] (sampling without replacement).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality
//! and fully deterministic per seed, though the exact streams differ from
//! upstream `StdRng` (any code relying on specific upstream sequences would
//! need re-blessing).

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires a probability in [0, 1], got {p}"
        );
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo with a 64-bit word: bias is negligible for the
                // spans used here (all far below 2^32).
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (self.start as f64 + unit * (self.end - self.start) as f64) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// Indices sampled without replacement (stand-in for rand's
        /// `IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` by partial
        /// Fisher–Yates shuffle.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a pool of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}
