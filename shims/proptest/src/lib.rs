//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), range and
//! tuple strategies, `any::<T>()`, `prop_map`, `proptest::collection::vec`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: generation is deterministic per build
//! (fixed RNG seed, so CI is reproducible), and failing cases are reported
//! by panic without shrinking — the failing values are printed, just not
//! minimised.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator used to produce test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy that picks uniformly among boxed alternatives (backs
/// [`prop_oneof!`]).
pub struct OneOf<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one alternative"
        );
        OneOf(options)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[pick].new_value(rng)
    }
}

#[doc(hidden)]
pub fn __box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Runner configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to generate per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Drives one property over `cases` generated inputs.
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            // Fixed seed: deterministic, reproducible test runs.
            TestRunner {
                config,
                rng: TestRng::new(0x70_72_6f_70_74_65_73_74),
            }
        }

        /// Runs `test` on `cases` values drawn from `strategy`. Failures
        /// panic immediately (no shrinking).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            F: FnMut(S::Value),
        {
            for _ in 0..self.config.cases {
                test(strategy.new_value(&mut self.rng));
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($config);
            __runner.run(&($($strategy,)+), |($($arg,)+)| $body);
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Uniform choice among alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::__box_strategy($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}
