//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Implements the API surface the `icde-bench` benches use — benchmark
//! groups, `bench_with_input`/`bench_function`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-measure timing loop instead of criterion's statistical
//! machinery. Each benchmark prints one line:
//!
//! ```text
//! group/function/param    time: 1.234 ms (n = 120)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing configuration shared by groups and the top-level context.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Benchmark context (stand-in for criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&self.config, &id.into().label, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&self.config, &label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&self.config, &label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Runs the timing loop of a single benchmark.
pub struct Bencher {
    config: Config,
    /// Mean time per iteration over the measurement phase.
    mean: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`: warm up for `warm_up_time`, then run batches until
    /// `measurement_time` elapses (at least `sample_size` iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }

        let min_iters = self.config.sample_size as u64;
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        let mut iters: u64 = 0;
        while iters < min_iters || (Instant::now() < deadline && warm_iters > 0) {
            black_box(routine());
            iters += 1;
            if iters >= min_iters && Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.mean = Some((elapsed / iters.max(1) as u32, iters));
    }
}

/// Returns `true` when the bench binary was invoked with `--test` (as real
/// criterion does for `cargo bench -- --test`): run every benchmark exactly
/// once with no warmup, so CI can smoke-test the harness cheaply.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark(config: &Config, label: &str, mut f: impl FnMut(&mut Bencher)) {
    let config = if test_mode() {
        Config {
            sample_size: 1,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::ZERO,
        }
    } else {
        config.clone()
    };
    let mut bencher = Bencher { config, mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some((mean, iters)) if test_mode() => {
            let _ = (mean, iters);
            println!("{label:<60} ok (test mode, 1 iteration)");
        }
        Some((mean, iters)) => {
            println!("{label:<60} time: {} (n = {iters})", format_duration(mean));
        }
        None => println!("{label:<60} (no measurement)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
