//! End-to-end integration tests spanning every crate: generate a graph,
//! build the offline index, answer TopL-ICDE / DTopL-ICDE queries and check
//! the answers against the exhaustive baselines.

use topl_icde::core::baseline::atindex::ATIndex;
use topl_icde::core::baseline::bruteforce::brute_force_topl;
use topl_icde::core::dtopl::{DTopLProcessor, DTopLQuery, DTopLStrategy};
use topl_icde::core::seed::is_valid_seed_community;
use topl_icde::core::topl::PruningToggles;
use topl_icde::prelude::*;

fn build(kind: DatasetKind, n: usize, seed: u64) -> (SocialNetwork, CommunityIndex) {
    let graph = DatasetSpec::new(kind, n, seed)
        .with_keyword_domain(12)
        .generate();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&graph);
    (graph, index)
}

fn default_query(l: usize) -> TopLQuery {
    TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, l)
}

#[test]
fn indexed_answers_match_bruteforce_on_every_dataset_family() {
    for kind in DatasetKind::ALL {
        let (graph, index) = build(kind, 200, 31);
        let query = default_query(5);
        let ours = TopLProcessor::new(&graph, &index).run(&query).unwrap();
        let exact = brute_force_topl(&graph, &query);
        let round = |xs: &[topl_icde::core::seed::SeedCommunity]| -> Vec<i64> {
            xs.iter()
                .map(|c| (c.influential_score * 1e6).round() as i64)
                .collect()
        };
        assert_eq!(
            round(&ours.communities),
            round(&exact.communities),
            "{kind:?}"
        );
        for c in &ours.communities {
            assert!(
                is_valid_seed_community(
                    &graph,
                    &c.vertices,
                    c.center,
                    query.support,
                    query.radius,
                    &query.keywords
                ),
                "{kind:?}"
            );
        }
    }
}

#[test]
fn atindex_and_ours_return_identical_scores() {
    let (graph, index) = build(DatasetKind::AmazonLike, 250, 5);
    let query = default_query(4);
    let ours = TopLProcessor::new(&graph, &index).run(&query).unwrap();
    let at = ATIndex::build(&graph).run(&graph, &query);
    assert_eq!(ours.communities.len(), at.communities.len());
    for (a, b) in ours.communities.iter().zip(at.communities.iter()) {
        assert!((a.influential_score - b.influential_score).abs() < 1e-6);
    }
}

#[test]
fn pruning_configurations_agree_end_to_end() {
    let (graph, index) = build(DatasetKind::Gaussian, 220, 77);
    let query = default_query(5);
    let processor = TopLProcessor::new(&graph, &index);
    let reference = processor
        .run_with_toggles(&query, PruningToggles::none())
        .unwrap();
    for toggles in [
        PruningToggles::keyword_only(),
        PruningToggles::keyword_support(),
        PruningToggles::all(),
    ] {
        let answer = processor.run_with_toggles(&query, toggles).unwrap();
        assert_eq!(answer.communities.len(), reference.communities.len());
        for (a, b) in answer.communities.iter().zip(reference.communities.iter()) {
            assert!((a.influential_score - b.influential_score).abs() < 1e-6);
        }
    }
}

#[test]
fn dtopl_greedy_is_near_optimal_end_to_end() {
    let (graph, index) = build(DatasetKind::Uniform, 180, 13);
    let query = DTopLQuery::new(default_query(2), 3);
    let processor = DTopLProcessor::new(&graph, &index);
    let greedy = processor
        .run(&query, DTopLStrategy::GreedyWithPruning)
        .unwrap();
    let plain = processor
        .run(&query, DTopLStrategy::GreedyWithoutPruning)
        .unwrap();
    let optimal = processor.run(&query, DTopLStrategy::Optimal).unwrap();
    assert!((greedy.diversity_score - plain.diversity_score).abs() < 1e-6);
    assert!(optimal.diversity_score + 1e-9 >= greedy.diversity_score);
    assert!(greedy.diversity_score >= (1.0 - 1.0 / std::f64::consts::E) * optimal.diversity_score);
}

#[test]
fn diversity_never_below_best_single_community() {
    let (graph, index) = build(DatasetKind::Zipf, 200, 3);
    let base = default_query(3);
    let topl = TopLProcessor::new(&graph, &index).run(&base).unwrap();
    let dtopl = DTopLProcessor::new(&graph, &index)
        .run(&DTopLQuery::new(base, 3), DTopLStrategy::GreedyWithPruning)
        .unwrap();
    if let Some(best) = topl.communities.first() {
        assert!(dtopl.diversity_score + 1e-9 >= best.influential_score);
    }
}

#[test]
fn facade_prelude_exposes_the_whole_pipeline() {
    // Compile-time + runtime check that the facade crate re-exports enough to
    // run the full pipeline without naming the sub-crates.
    let graph = DatasetSpec::new(DatasetKind::Uniform, 120, 1).generate();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&graph);
    let query = TopLQuery::with_defaults(KeywordSet::from_ids([0, 1, 2]));
    let answer = TopLProcessor::new(&graph, &index).run(&query).unwrap();
    let _scores: Vec<f64> = answer
        .communities
        .iter()
        .map(|c| c.influential_score)
        .collect();
    let eval = InfluenceEvaluator::new(&graph, InfluenceConfig::default());
    if let Some(c) = answer.communities.first() {
        let inf = eval.influenced_community(&c.vertices);
        assert!((inf.influential_score() - c.influential_score).abs() < 1e-9);
    }
}
