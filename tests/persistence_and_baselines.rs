//! Integration tests for graph persistence (queries survive a round-trip
//! through the on-disk formats) and for the case-study baseline (Figure 5).

use topl_icde::core::baseline::kcore::kcore_community;
use topl_icde::graph::io;
use topl_icde::prelude::*;

fn graph() -> SocialNetwork {
    DatasetSpec::new(DatasetKind::AmazonLike, 300, 9).with_keyword_domain(10).generate()
}

#[test]
fn query_results_survive_edge_list_roundtrip() {
    let original = graph();
    let text = io::to_edge_list(&original);
    let reloaded = io::parse_edge_list(&text).expect("round-trip parses");
    assert_eq!(reloaded.num_vertices(), original.num_vertices());
    assert_eq!(reloaded.num_edges(), original.num_edges());

    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
    let index_a = IndexBuilder::new(PrecomputeConfig::default()).build(&original);
    let index_b = IndexBuilder::new(PrecomputeConfig::default()).build(&reloaded);
    let a = TopLProcessor::new(&original, &index_a).run(&query).unwrap();
    let b = TopLProcessor::new(&reloaded, &index_b).run(&query).unwrap();
    assert_eq!(a.communities.len(), b.communities.len());
    for (x, y) in a.communities.iter().zip(b.communities.iter()) {
        assert!((x.influential_score - y.influential_score).abs() < 1e-9);
        assert_eq!(x.vertices, y.vertices);
    }
}

#[test]
fn query_results_survive_json_roundtrip() {
    let original = graph();
    let json = io::to_json(&original).unwrap();
    let reloaded = io::from_json(&json).unwrap();
    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 2);
    let index_a = IndexBuilder::new(PrecomputeConfig::default()).build(&original);
    let index_b = IndexBuilder::new(PrecomputeConfig::default()).build(&reloaded);
    let a = TopLProcessor::new(&original, &index_a).run(&query).unwrap();
    let b = TopLProcessor::new(&reloaded, &index_b).run(&query).unwrap();
    for (x, y) in a.communities.iter().zip(b.communities.iter()) {
        assert!((x.influential_score - y.influential_score).abs() < 1e-9);
    }
}

#[test]
fn case_study_topl_beats_kcore_influence_per_member() {
    // Figure 5's qualitative claim: around the same centre, the TopL-ICDE
    // seed community achieves a higher influential score than the k-core
    // community (which ignores keywords, triangles and influence).
    let g = graph();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);
    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 4, 2, 0.2, 1);
    let answer = TopLProcessor::new(&g, &index).run(&query).unwrap();
    let Some(best) = answer.communities.first() else {
        // No 4-truss community with these keywords in this random graph —
        // regenerate with a denser family would be needed; treat as vacuous.
        return;
    };
    if let Some(core) = kcore_community(&g, best.center, 4, query.theta) {
        // the k-core around the same centre typically has more seed members...
        // ...but the truss+keyword community is at least as influential per member
        let topl_per_member = best.influential_score / best.len() as f64;
        let core_per_member = core.influential_score / core.vertices.len() as f64;
        assert!(
            topl_per_member + 1e-9 >= core_per_member * 0.5,
            "TopL per-member influence {topl_per_member:.2} vs k-core {core_per_member:.2}"
        );
    }
}

#[test]
fn index_is_reusable_across_many_queries() {
    let g = graph();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);
    let processor = TopLProcessor::new(&g, &index);
    for (k, r, theta, l) in [(3u32, 1u32, 0.1, 2usize), (4, 2, 0.2, 5), (3, 3, 0.3, 3), (5, 2, 0.15, 4)] {
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), k, r, theta, l);
        let answer = processor.run(&query).unwrap();
        assert!(answer.communities.len() <= l);
        for c in &answer.communities {
            assert!(topl_icde::core::seed::is_valid_seed_community(
                &g,
                &c.vertices,
                c.center,
                k,
                r,
                &query.keywords
            ));
        }
    }
}
