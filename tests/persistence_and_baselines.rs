//! Integration tests for graph persistence (queries survive a round-trip
//! through the on-disk formats) and for the case-study baseline (Figure 5).

use topl_icde::core::baseline::kcore::kcore_community;
use topl_icde::graph::io;
use topl_icde::prelude::*;

fn graph() -> SocialNetwork {
    DatasetSpec::new(DatasetKind::AmazonLike, 300, 9)
        .with_keyword_domain(10)
        .generate()
}

#[test]
fn query_results_survive_edge_list_roundtrip() {
    let original = graph();
    let text = io::to_edge_list(&original);
    let reloaded = io::parse_edge_list(&text).expect("round-trip parses");
    assert_eq!(reloaded.num_vertices(), original.num_vertices());
    assert_eq!(reloaded.num_edges(), original.num_edges());

    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 3);
    let index_a = IndexBuilder::new(PrecomputeConfig::default()).build(&original);
    let index_b = IndexBuilder::new(PrecomputeConfig::default()).build(&reloaded);
    let a = TopLProcessor::new(&original, &index_a).run(&query).unwrap();
    let b = TopLProcessor::new(&reloaded, &index_b).run(&query).unwrap();
    assert_eq!(a.communities.len(), b.communities.len());
    for (x, y) in a.communities.iter().zip(b.communities.iter()) {
        assert!((x.influential_score - y.influential_score).abs() < 1e-9);
        assert_eq!(x.vertices, y.vertices);
    }
}

#[test]
fn query_results_survive_json_roundtrip() {
    let original = graph();
    let json = io::to_json(&original).unwrap();
    let reloaded = io::from_json(&json).unwrap();
    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2]), 3, 2, 0.2, 2);
    let index_a = IndexBuilder::new(PrecomputeConfig::default()).build(&original);
    let index_b = IndexBuilder::new(PrecomputeConfig::default()).build(&reloaded);
    let a = TopLProcessor::new(&original, &index_a).run(&query).unwrap();
    let b = TopLProcessor::new(&reloaded, &index_b).run(&query).unwrap();
    for (x, y) in a.communities.iter().zip(b.communities.iter()) {
        assert!((x.influential_score - y.influential_score).abs() < 1e-9);
    }
}

#[test]
fn case_study_topl_beats_kcore_influence_per_member() {
    // Figure 5's qualitative claim: around the same centre, the TopL-ICDE
    // seed community achieves a higher influential score than the k-core
    // community (which ignores keywords, triangles and influence).
    let g = graph();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);
    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 4, 2, 0.2, 1);
    let answer = TopLProcessor::new(&g, &index).run(&query).unwrap();
    let Some(best) = answer.communities.first() else {
        // No 4-truss community with these keywords in this random graph —
        // regenerate with a denser family would be needed; treat as vacuous.
        return;
    };
    if let Some(core) = kcore_community(&g, best.center, 4, query.theta) {
        // the k-core around the same centre typically has more seed members...
        // ...but the truss+keyword community is at least as influential per member
        let topl_per_member = best.influential_score / best.len() as f64;
        let core_per_member = core.influential_score / core.vertices.len() as f64;
        assert!(
            topl_per_member + 1e-9 >= core_per_member * 0.5,
            "TopL per-member influence {topl_per_member:.2} vs k-core {core_per_member:.2}"
        );
    }
}

#[test]
fn index_is_reusable_across_many_queries() {
    let g = graph();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);
    let processor = TopLProcessor::new(&g, &index);
    for (k, r, theta, l) in [
        (3u32, 1u32, 0.1, 2usize),
        (4, 2, 0.2, 5),
        (3, 3, 0.3, 3),
        (5, 2, 0.15, 4),
    ] {
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), k, r, theta, l);
        let answer = processor.run(&query).unwrap();
        assert!(answer.communities.len() <= l);
        for c in &answer.communities {
            assert!(topl_icde::core::seed::is_valid_seed_community(
                &g,
                &c.vertices,
                c.center,
                k,
                r,
                &query.keywords
            ));
        }
    }
}

#[test]
fn index_persist_roundtrip_across_dataset_kinds() {
    // The persisted index must reproduce the in-memory index exactly — same
    // serialised form, same query answers — for every synthetic family.
    use topl_icde::core::persist;

    for kind in [
        DatasetKind::Uniform,
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
    ] {
        let g = DatasetSpec::new(kind, 250, 33)
            .with_keyword_domain(12)
            .generate();
        let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);

        let json = persist::index_to_json(&index).expect("index serialises");
        let reloaded = persist::index_from_json(&json).expect("index deserialises");

        // Structural equality via the canonical serialised form.
        let rejson = persist::index_to_json(&reloaded).expect("reloaded index serialises");
        assert_eq!(json, rejson, "lossy index round-trip for {kind:?}");
        assert_eq!(index.node_count(), reloaded.node_count());
        assert_eq!(index.num_graph_vertices(), reloaded.num_graph_vertices());

        // Behavioural equality: identical answers on a real query.
        let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 4);
        let a = TopLProcessor::new(&g, &index).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &reloaded).run(&query).unwrap();
        assert_eq!(
            a.communities.len(),
            b.communities.len(),
            "answer count for {kind:?}"
        );
        for (x, y) in a.communities.iter().zip(b.communities.iter()) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.vertices, y.vertices);
            assert!((x.influential_score - y.influential_score).abs() < 1e-12);
        }
    }
}

#[test]
fn invalid_queries_error_instead_of_panicking() {
    let g = graph();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&g);
    let processor = TopLProcessor::new(&g, &index);

    // Empty keyword set.
    let empty = TopLQuery::new(KeywordSet::new(), 3, 2, 0.2, 3);
    assert!(processor.run(&empty).is_err());
    // Zero answers requested.
    let zero_l = TopLQuery::new(KeywordSet::from_ids([0, 1]), 3, 2, 0.2, 0);
    assert!(processor.run(&zero_l).is_err());
    // Influence threshold outside [0, 1).
    let bad_theta = TopLQuery::new(KeywordSet::from_ids([0, 1]), 3, 2, 1.0, 3);
    assert!(processor.run(&bad_theta).is_err());
    // Support below the k-truss minimum.
    let bad_k = TopLQuery::new(KeywordSet::from_ids([0, 1]), 1, 2, 0.2, 3);
    assert!(processor.run(&bad_k).is_err());
    // Zero radius.
    let bad_r = TopLQuery::new(KeywordSet::from_ids([0, 1]), 3, 0, 0.2, 3);
    assert!(processor.run(&bad_r).is_err());

    // Keywords that no vertex carries: a valid query with an empty answer.
    let unmatched = TopLQuery::new(KeywordSet::from_ids([9999]), 3, 2, 0.2, 3);
    let answer = processor
        .run(&unmatched)
        .expect("valid query with no matches");
    assert!(answer.communities.is_empty());
}
