//! Property-based integration tests: random small graphs and queries,
//! checking the paper's invariants end-to-end (no false dismissals by any
//! pruning rule, validity of every returned community, agreement between the
//! indexed processor and exhaustive search, monotonicity/submodularity of the
//! diversity score).

use proptest::prelude::*;
use topl_icde::core::baseline::bruteforce::brute_force_topl;
use topl_icde::core::seed::{extract_seed_community, is_valid_seed_community};
use topl_icde::core::topl::PruningToggles;
use topl_icde::influence::{DiversityState, InfluenceConfig, InfluenceEvaluator};
use topl_icde::prelude::*;

/// Strategy: a random small social network described by (vertices, edge
/// probability seed material, keyword assignments).
fn random_graph(max_vertices: usize) -> impl Strategy<Value = SocialNetwork> {
    (4usize..max_vertices, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic pseudo-random construction from the seed: a ring for
        // connectivity plus extra chords for triangles.
        let mut graph = GraphBuilder::with_vertices(n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let kw_count = 1 + (next() % 3) as usize;
            let kws: Vec<u32> = (0..kw_count).map(|_| (next() % 8) as u32).collect();
            graph
                .set_keywords(VertexId(i as u32), KeywordSet::from_ids(kws))
                .expect("vertex exists");
        }
        let mut seen = std::collections::HashSet::new();
        let mut add_edge = |graph: &mut GraphBuilder, a: u32, b: u32, w: f64| {
            let key = (a.min(b), a.max(b));
            if a != b && seen.insert(key) {
                graph.add_symmetric_edge(VertexId(a), VertexId(b), w);
            }
        };
        for i in 0..n {
            let j = (i + 1) % n;
            let w = 0.5 + (next() % 40) as f64 / 100.0;
            add_edge(&mut graph, i as u32, j as u32, w.min(0.9));
        }
        let chords = n + (next() % (2 * n as u64)) as usize;
        for _ in 0..chords {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            let w = 0.5 + (next() % 40) as f64 / 100.0;
            add_edge(&mut graph, a, b, w.min(0.9));
        }
        graph.build().expect("deduplicated edges always build")
    })
}

/// A random query over the small keyword domain used by `random_graph`.
fn random_query() -> impl Strategy<Value = TopLQuery> {
    (
        proptest::collection::vec(0u32..8, 1..4),
        2u32..5,
        1u32..3,
        0usize..2,
        0.05f64..0.4,
    )
        .prop_map(|(kws, k, r, l_extra, theta)| {
            TopLQuery::new(KeywordSet::from_ids(kws), k, r, theta, 2 + l_extra)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The indexed processor with all pruning rules returns exactly the
    /// brute-force scores, and every community it returns is valid.
    #[test]
    fn indexed_matches_bruteforce(g in random_graph(40), q in random_query()) {
        let index = IndexBuilder::new(PrecomputeConfig { parallel: false, ..Default::default() }).build(&g);
        let ours = TopLProcessor::new(&g, &index).run(&q).unwrap();
        let exact = brute_force_topl(&g, &q);
        let round = |cs: &[topl_icde::core::seed::SeedCommunity]| -> Vec<i64> {
            cs.iter().map(|c| (c.influential_score * 1e6).round() as i64).collect()
        };
        prop_assert_eq!(round(&ours.communities), round(&exact.communities));
        for c in &ours.communities {
            prop_assert!(is_valid_seed_community(&g, &c.vertices, c.center, q.support, q.radius, &q.keywords));
        }
    }

    /// Disabling pruning rules never changes the returned scores (safety of
    /// every rule).
    #[test]
    fn pruning_rules_are_safe(g in random_graph(36), q in random_query()) {
        let index = IndexBuilder::new(PrecomputeConfig { parallel: false, ..Default::default() }).build(&g);
        let processor = TopLProcessor::new(&g, &index);
        let reference = processor.run_with_toggles(&q, PruningToggles::none()).unwrap();
        let pruned = processor.run_with_toggles(&q, PruningToggles::all()).unwrap();
        let round = |cs: &[topl_icde::core::seed::SeedCommunity]| -> Vec<i64> {
            cs.iter().map(|c| (c.influential_score * 1e6).round() as i64).collect()
        };
        prop_assert_eq!(round(&reference.communities), round(&pruned.communities));
    }

    /// Every extracted seed community is valid, and the influential score is
    /// at least the community size (members contribute cpp = 1 each).
    #[test]
    fn extracted_communities_are_valid(g in random_graph(40), q in random_query()) {
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig { theta: q.theta });
        for center in g.vertices() {
            if let Some(community) = extract_seed_community(&g, center, q.support, q.radius, &q.keywords) {
                prop_assert!(is_valid_seed_community(&g, &community, center, q.support, q.radius, &q.keywords));
                let score = eval.influential_score(&community);
                prop_assert!(score + 1e-9 >= community.len() as f64);
            }
        }
    }

    /// Diversity score is monotone and submodular over random community sets.
    #[test]
    fn diversity_is_monotone_and_submodular(g in random_graph(30), seeds in proptest::collection::vec(any::<u32>(), 3)) {
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig { theta: 0.2 });
        let n = g.num_vertices() as u32;
        let communities: Vec<_> = seeds
            .iter()
            .map(|s| {
                let center = VertexId(s % n);
                let ball = topl_icde::graph::traversal::hop_subgraph(&g, center, 1);
                eval.influenced_community(&ball)
            })
            .collect();
        // monotone: adding a community never decreases the score
        let mut state = DiversityState::new();
        let mut last = 0.0;
        for c in &communities {
            state.add(c);
            prop_assert!(state.score() + 1e-9 >= last);
            last = state.score();
        }
        // submodular: gain of the third w.r.t. {first} >= w.r.t. {first, second}
        let mut small = DiversityState::new();
        small.add(&communities[0]);
        let mut large = DiversityState::new();
        large.add(&communities[0]);
        large.add(&communities[1]);
        prop_assert!(small.gain(&communities[2]) + 1e-9 >= large.gain(&communities[2]));
    }

    /// The influential score of a seed never exceeds the number of vertices
    /// of the graph (every cpp is at most 1) and never drops below the seed
    /// size.
    #[test]
    fn influential_score_bounds(g in random_graph(30), center in any::<u32>(), theta in 0.05f64..0.5) {
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig { theta });
        let center = VertexId(center % g.num_vertices() as u32);
        let seed = topl_icde::graph::traversal::hop_subgraph(&g, center, 1);
        let inf = eval.influenced_community(&seed);
        prop_assert!(inf.influential_score() + 1e-9 >= seed.len() as f64);
        prop_assert!(inf.influential_score() <= g.num_vertices() as f64 + 1e-9);
        prop_assert!(inf.len() <= g.num_vertices());
    }
}
